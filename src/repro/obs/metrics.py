"""Process-global metrics: counters, gauges, histograms.

Metric names are dotted paths; dynamic dimensions (rule name,
diagnostic code, join-graph alias) are appended as the last path
component, e.g. ``rewrite.rule_fired.17`` or
``analysis.diagnostics.JGI031``.  The full name catalog lives in
``docs/observability.md``.

Unlike the tracer, the registry has no disabled mode: recording a
metric is one dict operation, cheap enough for every call site that
wants it.  Hot loops (the rewrite engine's rule search) accumulate
locally and flush once per run instead.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Iterable

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "latency_summary_ms",
    "metrics_scope",
    "record_diagnostics",
    "set_metrics",
]

# Log-bucket base: bucket i covers (GAMMA**(i-1), GAMMA**i], so any
# positive sample is reported within a factor of sqrt(GAMMA) of its
# true value — a relative quantile error bound of ~4.9%.
_GAMMA = 1.1
_LOG_GAMMA = math.log(_GAMMA)
_QUANTILES = (("p50", 0.50), ("p90", 0.90), ("p95", 0.95), ("p99", 0.99))


class Histogram:
    """Mergeable log-bucketed quantile histogram.

    Samples land in sparse exponential buckets (index
    ``ceil(log(v) / log(GAMMA))``); each bucket is reported by its
    geometric midpoint ``GAMMA**(i - 0.5)``, so every quantile of a
    positive-valued distribution is answered within a relative error
    of ``sqrt(GAMMA) - 1`` (< 5%).  Non-positive samples collapse into
    one underflow bucket and are reported as the observed minimum.

    ``merge`` adds bucket counts, so it is lossless, associative and
    commutative — worker- and shard-registry merges produce exactly
    the histogram a single registry would have recorded.
    """

    __slots__ = ("buckets", "count", "maximum", "minimum", "total", "underflow")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self.buckets: dict[int, int] = {}
        self.underflow = 0  # samples <= 0 (rare: deltas, clock skew)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if value > 0.0:
            index = math.ceil(math.log(value) / _LOG_GAMMA)
            self.buckets[index] = self.buckets.get(index, 0) + 1
        else:
            self.underflow += 1

    def merge(self, other: "Histogram") -> None:
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        self.underflow += other.underflow
        for index, count in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + count

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile estimate, clamped into [min, max]."""
        if not self.count:
            return 0.0
        rank = min(self.count, max(1, math.ceil(q * self.count)))
        if rank <= self.underflow:
            return min(self.minimum, 0.0)
        seen = self.underflow
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= rank:
                representative = _GAMMA ** (index - 0.5)
                return min(self.maximum, max(self.minimum, representative))
        return self.maximum

    def percentiles(self) -> dict[str, float]:
        return {name: self.quantile(q) for name, q in _QUANTILES}

    # -- marshalling ----------------------------------------------------

    def state(self) -> dict[str, Any]:
        """Complete internal state as plain builtins — unlike
        :meth:`summary` this loses nothing: ``from_state`` round-trips
        to a histogram whose every bucket, bound, and tally is
        identical, so histograms can cross a process boundary and still
        merge exactly as if one registry had recorded every sample."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "underflow": self.underflow,
            "buckets": dict(self.buckets),
        }

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "Histogram":
        histogram = cls()
        histogram.count = int(state["count"])
        histogram.total = float(state["total"])
        histogram.minimum = float(state["min"])
        histogram.maximum = float(state["max"])
        histogram.underflow = int(state["underflow"])
        histogram.buckets = {
            int(index): int(count)
            for index, count in state["buckets"].items()
        }
        return histogram

    def summary(self) -> dict[str, float]:
        if not self.count:
            return {
                "count": 0,
                "total": 0.0,
                "min": 0.0,
                "max": 0.0,
                "mean": 0.0,
                **{name: 0.0 for name, _ in _QUANTILES},
            }
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            **self.percentiles(),
        }


def latency_summary_ms(histogram: "Histogram | None") -> dict[str, float]:
    """Millisecond latency summary (count + mean/p50/p90/p95/p99/max)
    of a *nanosecond* histogram — the shape every benchmark and chaos
    report embeds; all-zero when nothing was observed."""
    if histogram is None or not histogram.count:
        return {
            "count": 0,
            "mean": 0.0,
            "p50": 0.0,
            "p90": 0.0,
            "p95": 0.0,
            "p99": 0.0,
            "max": 0.0,
        }
    return {
        "count": histogram.count,
        "mean": histogram.mean / 1e6,
        **{name: ns / 1e6 for name, ns in histogram.percentiles().items()},
        "max": histogram.maximum / 1e6,
    }


class MetricsRegistry:
    """A bag of named counters, gauges, and histograms."""

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- recording ------------------------------------------------------

    def count(self, name: str, n: float = 1) -> None:
        """Increment counter ``name`` by ``n``."""
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest ``value``."""
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one sample into histogram ``name``."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(value)

    # -- aggregation ----------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry: counters add, gauges take
        the other side's latest value, histograms merge."""
        for name, value in other.counters.items():
            self.count(name, value)
        self.gauges.update(other.gauges)
        for name, histogram in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = self.histograms[name] = Histogram()
            mine.merge(histogram)

    def snapshot(self) -> dict[str, Any]:
        """A plain-dict, JSON-ready view of every metric."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: histogram.summary()
                for name, histogram in sorted(self.histograms.items())
            },
        }

    def state(self) -> dict[str, Any]:
        """Lossless plain-builtin state for cross-process transport —
        the worker side of the pipe.  ``merge_state`` on the receiving
        registry is bucket-for-bucket equivalent to ``merge`` with the
        live registry."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: histogram.state()
                for name, histogram in self.histograms.items()
            },
        }

    def merge_state(self, state: dict[str, Any]) -> None:
        """Fold a :meth:`state` dict (typically marshalled from a
        worker process) into this registry, exactly as :meth:`merge`
        would fold the registry it was taken from."""
        for name, value in state["counters"].items():
            self.count(name, value)
        self.gauges.update(state["gauges"])
        for name, histogram_state in state["histograms"].items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = self.histograms[name] = Histogram()
            mine.merge(Histogram.from_state(histogram_state))

    def prefixed(self, prefix: str) -> dict[str, float]:
        """Counters under ``prefix.`` keyed by their last component
        (e.g. ``prefixed("rewrite.rule_fired")`` -> rule -> fires)."""
        cut = len(prefix) + 1
        return {
            name[cut:]: value
            for name, value in self.counters.items()
            if name.startswith(prefix + ".")
        }

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()


# -- process-global registry ---------------------------------------------

_state = threading.local()
_DEFAULT_METRICS = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-global registry instrumented code records into."""
    return getattr(_state, "metrics", _DEFAULT_METRICS)


def set_metrics(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Install ``registry`` globally (``None`` restores the process
    default); returns the now-active registry."""
    if registry is None:
        registry = _DEFAULT_METRICS
    _state.metrics = registry
    return registry


class metrics_scope:
    """Context manager: route recordings into a fresh registry for the
    duration (the previous registry is restored, unmodified)::

        with metrics_scope() as metrics:
            processor.execute(query)
        print(metrics.snapshot())
    """

    def __enter__(self) -> MetricsRegistry:
        self._previous = get_metrics()
        return set_metrics(MetricsRegistry())

    def __exit__(self, *exc: object) -> None:
        set_metrics(self._previous)


def record_diagnostics(diagnostics: Iterable[Any]) -> None:
    """Count analysis findings (``repro.analysis`` diagnostics) into
    the registry, one counter per JGI code plus per-severity totals —
    the bridge that lets ``repro obs`` report analysis health next to
    performance numbers."""
    metrics = get_metrics()
    for diagnostic in diagnostics:
        metrics.count(f"analysis.diagnostics.{diagnostic.code}")
        metrics.count(f"analysis.{diagnostic.severity}s")
