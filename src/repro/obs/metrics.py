"""Process-global metrics: counters, gauges, histograms.

Metric names are dotted paths; dynamic dimensions (rule name,
diagnostic code, join-graph alias) are appended as the last path
component, e.g. ``rewrite.rule_fired.17`` or
``analysis.diagnostics.JGI031``.  The full name catalog lives in
``docs/observability.md``.

Unlike the tracer, the registry has no disabled mode: recording a
metric is one dict operation, cheap enough for every call site that
wants it.  Hot loops (the rewrite engine's rule search) accumulate
locally and flush once per run instead.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "metrics_scope",
    "record_diagnostics",
    "set_metrics",
]


class Histogram:
    """Streaming summary of an observed distribution (count / total /
    min / max; mean derived).  No buckets — the consumers here want
    per-phase totals and worst cases, not quantiles."""

    __slots__ = ("count", "maximum", "minimum", "total")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def merge(self, other: "Histogram") -> None:
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
        }


class MetricsRegistry:
    """A bag of named counters, gauges, and histograms."""

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- recording ------------------------------------------------------

    def count(self, name: str, n: float = 1) -> None:
        """Increment counter ``name`` by ``n``."""
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest ``value``."""
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one sample into histogram ``name``."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(value)

    # -- aggregation ----------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry: counters add, gauges take
        the other side's latest value, histograms merge."""
        for name, value in other.counters.items():
            self.count(name, value)
        self.gauges.update(other.gauges)
        for name, histogram in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = self.histograms[name] = Histogram()
            mine.merge(histogram)

    def snapshot(self) -> dict[str, Any]:
        """A plain-dict, JSON-ready view of every metric."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: histogram.summary()
                for name, histogram in sorted(self.histograms.items())
            },
        }

    def prefixed(self, prefix: str) -> dict[str, float]:
        """Counters under ``prefix.`` keyed by their last component
        (e.g. ``prefixed("rewrite.rule_fired")`` -> rule -> fires)."""
        cut = len(prefix) + 1
        return {
            name[cut:]: value
            for name, value in self.counters.items()
            if name.startswith(prefix + ".")
        }

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()


# -- process-global registry ---------------------------------------------

_state = threading.local()
_DEFAULT_METRICS = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-global registry instrumented code records into."""
    return getattr(_state, "metrics", _DEFAULT_METRICS)


def set_metrics(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Install ``registry`` globally (``None`` restores the process
    default); returns the now-active registry."""
    if registry is None:
        registry = _DEFAULT_METRICS
    _state.metrics = registry
    return registry


class metrics_scope:
    """Context manager: route recordings into a fresh registry for the
    duration (the previous registry is restored, unmodified)::

        with metrics_scope() as metrics:
            processor.execute(query)
        print(metrics.snapshot())
    """

    def __enter__(self) -> MetricsRegistry:
        self._previous = get_metrics()
        return set_metrics(MetricsRegistry())

    def __exit__(self, *exc: object) -> None:
        set_metrics(self._previous)


def record_diagnostics(diagnostics: Iterable[Any]) -> None:
    """Count analysis findings (``repro.analysis`` diagnostics) into
    the registry, one counter per JGI code plus per-severity totals —
    the bridge that lets ``repro obs`` report analysis health next to
    performance numbers."""
    metrics = get_metrics()
    for diagnostic in diagnostics:
        metrics.count(f"analysis.diagnostics.{diagnostic.code}")
        metrics.count(f"analysis.{diagnostic.severity}s")
