"""Nested-span tracing with a near-zero-overhead disabled path.

A :class:`Span` is one timed region of the pipeline (``compile``,
``isolate.phase:rank``, ``sql.run`` …) with attributes, point-in-time
events, and child spans; a :class:`Tracer` maintains the active span
stack and the list of finished root spans.  Timestamps come from
:func:`time.perf_counter_ns`, so durations are monotonic and immune
to wall-clock adjustments.

The tracer is designed to be left in place permanently: when
``enabled`` is ``False`` (the default for the process-global tracer),
:meth:`Tracer.span` returns a shared singleton null span and
:meth:`Tracer.event` returns immediately, so instrumented code pays
one attribute load and one branch per call site.

The span taxonomy used by the pipeline instrumentation is documented
in ``docs/observability.md``.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from time import perf_counter_ns
from typing import Any, Iterator

__all__ = [
    "Event",
    "NullSpan",
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "tracing",
]


class Event:
    """A point-in-time marker inside a span (e.g. one rewrite-rule
    application)."""

    __slots__ = ("attributes", "name", "ts_ns")

    def __init__(self, name: str, ts_ns: int, attributes: dict[str, Any]):
        self.name = name
        self.ts_ns = ts_ns
        self.attributes = attributes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Event({self.name!r}, ts={self.ts_ns})"


class Span:
    """One timed, attributed region; a node in the trace tree."""

    __slots__ = (
        "attributes",
        "children",
        "end_ns",
        "events",
        "name",
        "start_ns",
        "_tracer",
    )

    def __init__(self, tracer: "Tracer", name: str, attributes: dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.attributes = attributes
        self.start_ns = 0
        self.end_ns: int | None = None
        self.children: list[Span] = []
        self.events: list[Event] = []

    # -- context manager ------------------------------------------------

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.start_ns = self._tracer.clock()
        return self

    def __exit__(self, *exc: object) -> None:
        self.end_ns = self._tracer.clock()
        self._tracer._pop(self)

    # -- recording ------------------------------------------------------

    def set(self, **attributes: Any) -> "Span":
        """Attach (or overwrite) attributes on the open span."""
        self.attributes.update(attributes)
        return self

    def event(self, name: str, **attributes: Any) -> None:
        """Record an instant event inside this span."""
        self.events.append(Event(name, self._tracer.clock(), attributes))

    # -- inspection -----------------------------------------------------

    @property
    def duration_ns(self) -> int:
        """Span duration (0 while still open)."""
        if self.end_ns is None:
            return 0
        return self.end_ns - self.start_ns

    @property
    def duration_ms(self) -> float:
        return self.duration_ns / 1e6

    def find(self, name: str) -> "Span | None":
        """Depth-first search for the first descendant named ``name``."""
        for child in self.children:
            if child.name == name:
                return child
            found = child.find(name)
            if found is not None:
                return found
        return None

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration_ms:.3f}ms)"


class NullSpan:
    """The do-nothing span handed out by a disabled tracer.  A single
    shared instance; every method is a constant-time no-op."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def set(self, **attributes: Any) -> "NullSpan":
        return self

    def event(self, name: str, **attributes: Any) -> None:
        return None


NULL_SPAN = NullSpan()


class Tracer:
    """Collects a forest of spans for one traced workload.

    Parameters
    ----------
    enabled:
        When ``False``, :meth:`span` returns the shared
        :data:`NULL_SPAN` and nothing is recorded.
    clock:
        Nanosecond monotonic clock (injectable for deterministic
        tests).
    """

    def __init__(self, enabled: bool = True, clock=perf_counter_ns):
        self.enabled = enabled
        self.clock = clock
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    # -- span lifecycle -------------------------------------------------

    def span(self, name: str, **attributes: Any) -> Span | NullSpan:
        """Open a new span as a context manager::

            with tracer.span("compile", query=q) as span:
                ...
                span.set(ops=42)
        """
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, attributes)

    def event(self, name: str, **attributes: Any) -> None:
        """Record an instant event on the innermost open span (or as a
        zero-length root span when none is open)."""
        if not self.enabled:
            return
        if self._stack:
            self._stack[-1].event(name, **attributes)
        else:
            span = Span(self, name, attributes)
            span.start_ns = span.end_ns = self.clock()
            self.roots.append(span)

    def _push(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # tolerate mismatched exits (a span closed out of order drops
        # everything above it on the stack rather than corrupting state)
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break

    # -- inspection -----------------------------------------------------

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def find(self, name: str) -> Span | None:
        """First span named ``name`` anywhere in the recorded forest."""
        for root in self.roots:
            if root.name == name:
                return root
            found = root.find(name)
            if found is not None:
                return found
        return None

    def walk(self) -> Iterator[Span]:
        for root in self.roots:
            yield from root.walk()

    def reset(self) -> None:
        """Drop all recorded spans (open spans are abandoned)."""
        self.roots = []
        self._stack = []


# -- process-global tracer ----------------------------------------------

_state = threading.local()
_DEFAULT_TRACER = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-global tracer (disabled unless installed via
    :func:`set_tracer` / :func:`tracing`); instrumented library code
    should always go through this accessor."""
    return getattr(_state, "tracer", _DEFAULT_TRACER)


def set_tracer(tracer: Tracer | None) -> Tracer:
    """Install ``tracer`` as the global tracer (``None`` restores the
    disabled default); returns the now-active tracer."""
    if tracer is None:
        tracer = _DEFAULT_TRACER
    _state.tracer = tracer
    return tracer


@contextmanager
def tracing(enabled: bool = True) -> Iterator[Tracer]:
    """Context manager: install a fresh tracer for the duration::

        with tracing() as tracer:
            processor.compile(query)
        print(tree_report(tracer))
    """
    previous = get_tracer()
    tracer = Tracer(enabled=enabled)
    set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
