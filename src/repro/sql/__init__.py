"""SQL code generation and the SQLite execution back-end.

Two generators mirror the paper's two plan shapes:

* :func:`generate_join_graph_sql` renders an *isolated* plan as one
  ``SELECT [DISTINCT] … FROM doc AS d1, … WHERE … ORDER BY …`` block
  (Figs. 8 and 9) — flat self-join chains, no grouping, no window
  functions;
* :func:`generate_stacked_sql` renders the *initial* (stacked) plan as
  a ``WITH`` common-table-expression chain featuring ``DISTINCT`` and
  ``RANK() OVER (ORDER BY …)`` per blocking operator — the SQL the
  paper reports DB2 received before isolation.

:class:`SQLiteBackend` hosts the tabular encoding, creates the Table 6
B-tree index set, and executes either SQL form.
"""

from repro.sql.codegen import FlatQuery, SQLQuery, flatten_query, generate_join_graph_sql
from repro.sql.stacked import generate_stacked_sql
from repro.sql.backend import SQLiteBackend, TABLE6_INDEXES

__all__ = [
    "FlatQuery",
    "SQLQuery",
    "flatten_query",
    "SQLiteBackend",
    "TABLE6_INDEXES",
    "generate_join_graph_sql",
    "generate_stacked_sql",
]
