"""Stacked plan → SQL ``WITH`` chain (the pre-isolation baseline).

Each operator of the compiled DAG becomes one common table expression;
blocking operators surface as ``DISTINCT`` and
``RANK() OVER (ORDER BY …)`` clauses — exactly the SQL shape the paper
reports submitting to DB2 from the unrewritten compositional plans
(Section 4, "the original stacked plan"), which yields the numerous
SORT primitives of Table 9's *stacked* column.
"""

from __future__ import annotations

from repro.algebra.dagutils import all_nodes
from repro.algebra.ops import (
    Attach,
    Cross,
    Distinct,
    DocScan,
    Join,
    LitTable,
    Operator,
    Project,
    RowId,
    RowRank,
    Select,
    Serialize,
)
from repro.errors import CodegenError
from repro.sql.codegen import SQLQuery, _render_value


def generate_stacked_sql(root: Serialize) -> SQLQuery:
    """Render a (typically un-isolated) plan as a CTE chain."""
    names: dict[int, str] = {}
    ctes: list[str] = []

    def name_of(node: Operator) -> str:
        return names[id(node)]

    body_of_root = None
    for node in all_nodes(root):  # post-order: children first
        if isinstance(node, DocScan):
            names[id(node)] = "doc"
            continue
        cte_name = f"t{len(ctes) + 1}"
        body = _render_operator(node, name_of)
        if isinstance(node, Serialize):
            body_of_root = body
            continue
        names[id(node)] = cte_name
        ctes.append(f"{cte_name} AS (\n{body}\n)")

    if body_of_root is None:
        raise CodegenError("plan has no serialize root")
    text = ("WITH " + ",\n".join(ctes) + "\n" if ctes else "") + body_of_root
    return SQLQuery(
        text=text,
        select_aliases=["pos", "item"],
        item_alias="item",
        doc_instances=0,
        distinct=False,
        order_by=["pos", "item"],
    )


def _cols_list(cols: tuple[str, ...], prefix: str = "") -> str:
    return ", ".join(f"{prefix}{c}" for c in cols)


def _render_operator(node: Operator, name_of) -> str:
    if isinstance(node, LitTable):
        if not node.rows:
            nulls = ", ".join(f"NULL AS {c}" for c in node.names)
            return f"  SELECT {nulls} WHERE 1 = 0"
        selects = []
        for row in node.rows:
            items = ", ".join(
                f"{_render_value(v)} AS {c}" for c, v in zip(node.names, row)
            )
            selects.append(f"  SELECT {items}")
        return "\n  UNION ALL\n".join(selects)

    if isinstance(node, Project):
        child = name_of(node.child)
        cols = ", ".join(
            (old if new == old else f"{old} AS {new}") for new, old in node.cols
        )
        return f"  SELECT {cols} FROM {child}"

    if isinstance(node, Select):
        child = name_of(node.child)
        where = node.pred.to_sql(lambda c: c)
        return f"  SELECT {_cols_list(node.columns)} FROM {child} WHERE {where}"

    if isinstance(node, (Join, Cross)):
        left, right = name_of(node.children[0]), name_of(node.children[1])
        left_cols = ", ".join(f"l.{c}" for c in node.children[0].columns)
        right_cols = ", ".join(f"r.{c}" for c in node.children[1].columns)
        lines = f"  SELECT {left_cols}, {right_cols}\n  FROM {left} AS l, {right} AS r"
        if isinstance(node, Join):
            side = {c: "l" for c in node.children[0].columns}
            side.update({c: "r" for c in node.children[1].columns})
            where = node.pred.to_sql(lambda c: f"{side[c]}.{c}")
            lines += f"\n  WHERE {where}"
        return lines

    if isinstance(node, Distinct):
        child = name_of(node.child)
        return f"  SELECT DISTINCT {_cols_list(node.columns)} FROM {child}"

    if isinstance(node, Attach):
        child = name_of(node.child)
        cols = _cols_list(node.child.columns)
        return f"  SELECT {cols}, {_render_value(node.value)} AS {node.col} FROM {child}"

    if isinstance(node, RowId):
        child = name_of(node.child)
        cols = _cols_list(node.child.columns)
        return (
            f"  SELECT {cols}, ROW_NUMBER() OVER () AS {node.col} FROM {child}"
        )

    if isinstance(node, RowRank):
        child = name_of(node.child)
        cols = _cols_list(node.child.columns)
        order = ", ".join(node.order)
        return (
            f"  SELECT {cols}, RANK() OVER (ORDER BY {order}) AS {node.col} "
            f"FROM {child}"
        )

    if isinstance(node, Serialize):
        child = name_of(node.children[0])
        return (
            f"SELECT {node.pos} AS pos, {node.item} AS item FROM {child}\n"
            f"ORDER BY {node.pos}, {node.item}"
        )

    raise CodegenError(f"cannot render {node.label()} as SQL")
