"""Isolated plan → single SELECT-DISTINCT-FROM-WHERE-ORDER BY block.

The join graph region flattens into ``FROM doc AS d1, doc AS d2, …``
plus a conjunctive ``WHERE``; the plan tail contributes the
``SELECT [DISTINCT]`` list and the ``ORDER BY`` clause (paper Figs. 8
and 9).  Two points deserve emphasis:

* When a tail δ is present, the *entire* column set it deduplicates
  over appears in the DISTINCT list — this is how the XQuery duplicate
  semantics (duplicates removed per location step, retained across
  for-loop iterations) survives the translation: loop key columns such
  as ``d2.pre, d4.pre, d5.pre`` stay in the clause even though only
  the result column is serialized (Fig. 9).
* **Alias unification**: a DAG-shared subplan expands once per
  reference, so a plan's flat form can reference far more ``doc``
  instances than its DAG has leaves.  Two aliases of the same table
  that the WHERE clause equates on the key column ``pre`` provably
  denote the same row; merging them (union-find, then conjunct
  rewriting and deduplication) recovers the paper's compact self-join
  chains.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.algebra.expressions import (
    ColRef,
    Comparison,
    Const,
    Expr,
    Value,
    col,
    conjuncts,
)
from repro.algebra.ops import (
    Attach,
    Cross,
    Distinct,
    DocScan,
    Join,
    LitTable,
    Operator,
    Project,
    RowRank,
    Select,
    Serialize,
)
from repro.errors import CodegenError
from repro.rewrite.joingraph import extract_join_graph

_QUALIFIED = re.compile(r"^(d\d+)\.(\w+)$")

_DOC_COLS = ("pre", "size", "level", "kind", "name", "value", "data")


def _conjunct_aliases(conjunct: "Expr") -> set[str]:
    out = set()
    for name in conjunct.cols():
        m = _QUALIFIED.match(name)
        if m:
            out.add(m.group(1))
    return out


def _mapping_to_rename(mapping: dict[str, str]) -> dict[str, str]:
    rename: dict[str, str] = {}
    for source, target in mapping.items():
        for column in _DOC_COLS:
            rename[f"{source}.{column}"] = f"{target}.{column}"
    return rename


def _render_value(value: Value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return repr(value)


@dataclass
class SQLQuery:
    """A generated SQL query plus the metadata needed to interpret its
    result set."""

    text: str
    #: output column aliases in SELECT order
    select_aliases: list[str]
    #: alias of the column carrying the result items (pre ranks)
    item_alias: str
    #: number of ``doc`` instances in the FROM clause (0 for stacked SQL)
    doc_instances: int
    distinct: bool
    order_by: list[str] = field(default_factory=list)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


class _Flattener:
    """Flattens the join-graph region into aliases + symbolic conjuncts.

    Column maps bind plan columns to expressions over *qualified*
    pseudo-columns (``d3.pre``) and constants.
    """

    def __init__(self) -> None:
        self.alias_count = 0
        self.conjuncts: list[Expr] = []
        self.impossible = False

    def new_alias(self) -> str:
        self.alias_count += 1
        return f"d{self.alias_count}"

    def flatten(self, node: Operator) -> dict[str, Expr]:
        if isinstance(node, DocScan):
            alias = self.new_alias()
            return {c: col(f"{alias}.{c}") for c in node.columns}
        if isinstance(node, Select):
            colmap = self.flatten(node.child)
            self.conjuncts.extend(conjuncts(node.pred.substitute(colmap)))
            return colmap
        if isinstance(node, Project):
            colmap = self.flatten(node.child)
            return {new: colmap[old] for new, old in node.cols}
        if isinstance(node, Attach):
            colmap = self.flatten(node.child)
            out = dict(colmap)
            out[node.col] = Const(node.value)
            return out
        if isinstance(node, Join):
            left = self.flatten(node.left)
            right = self.flatten(node.right)
            colmap = {**left, **right}
            self.conjuncts.extend(conjuncts(node.pred.substitute(colmap)))
            return colmap
        if isinstance(node, Cross):
            left = self.flatten(node.left)
            right = self.flatten(node.right)
            return {**left, **right}
        if isinstance(node, LitTable):
            if len(node.rows) == 1:
                return {
                    c: Const(v) for c, v in zip(node.names, node.rows[0])
                }
            if not node.rows:
                self.impossible = True
                return {c: Const(None) for c in node.names}
            raise CodegenError(
                "multi-row literal tables cannot appear in a join graph"
            )
        raise CodegenError(
            f"operator {node.label()} is not join-graph material — "
            "was the plan isolated?"
        )

    # -- alias unification ---------------------------------------------

    def unify_aliases(self, colmaps: list[dict[str, Expr]]) -> list[str]:
        """Merge aliases provably equal via key equality on ``pre``.

        Returns the surviving alias list (renumbered d1..dk) and
        rewrites conjuncts and the given column maps in place.
        """
        parent: dict[str, str] = {}

        def find(a: str) -> str:
            parent.setdefault(a, a)
            while parent[a] != a:
                parent[a] = parent[parent[a]]
                a = parent[a]
            return a

        def union(a: str, b: str) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[max(ra, rb)] = min(ra, rb)

        changed = True
        while changed:
            changed = False
            for conjunct in self.conjuncts:
                if not isinstance(conjunct, Comparison):
                    continue
                eq = conjunct.is_col_eq_col()
                if eq is None:
                    continue
                ma, mb = _QUALIFIED.match(eq[0]), _QUALIFIED.match(eq[1])
                if not ma or not mb:
                    continue
                if ma.group(2) == "pre" and mb.group(2) == "pre":
                    if find(ma.group(1)) != find(mb.group(1)):
                        union(ma.group(1), mb.group(1))
                        changed = True

        all_aliases = [f"d{i + 1}" for i in range(self.alias_count)]
        survivors = sorted(
            {find(a) for a in all_aliases}, key=lambda a: int(a[1:])
        )
        renumber = {old: f"d{i + 1}" for i, old in enumerate(survivors)}

        def remap(name: str) -> str:
            m = _QUALIFIED.match(name)
            if not m:
                return name
            return f"{renumber[find(m.group(1))]}.{m.group(2)}"

        rename_map: dict[str, str] = {}
        for conjunct in self.conjuncts:
            for name in conjunct.cols():
                rename_map.setdefault(name, remap(name))
        rewritten: list[Expr] = []
        seen: set[Expr] = set()
        for conjunct in self.conjuncts:
            new = conjunct.rename(rename_map)
            if isinstance(new, Comparison):
                eq = new.is_col_eq_col()
                if eq is not None and eq[0] == eq[1]:
                    continue  # tautological after merging
            if new in seen:
                continue
            seen.add(new)
            rewritten.append(new)
        self.conjuncts = rewritten

        for colmap in colmaps:
            for key_name in list(colmap):
                expr = colmap[key_name]
                mapping = {n: remap(n) for n in expr.cols()}
                colmap[key_name] = expr.rename(mapping)
        return [renumber[s] for s in survivors]

    def drop_redundant_witnesses(
        self, aliases: list[str], protected: set[str], colmaps: list[dict[str, Expr]]
    ) -> list[str]:
        """Remove duplicated existential witnesses (DISTINCT present).

        A set of aliases ``S`` is redundant when an alias substitution
        ``M: S -> kept aliases`` turns every conjunct mentioning ``S``
        into a conjunct already present among the others: any
        satisfying assignment then keeps witnesses for ``S`` (namely
        the images' rows), and since a tail DISTINCT erases
        multiplicities, dropping ``S`` and its conjuncts preserves the
        result set.  The matcher grows ``M`` recursively, so whole
        duplicated condition *chains* (e.g. Q2's four copies of the
        ``price > 500`` subplan, or X9's repeated people/person paths)
        collapse to one copy, not just isolated aliases.
        """
        changed = True
        while changed:
            changed = False
            for seed in list(aliases):
                if seed in protected:
                    continue
                mapping = self._match_witness(seed, aliases, protected)
                if mapping is None:
                    continue
                sources = set(mapping)
                self.conjuncts = [
                    c
                    for c in self.conjuncts
                    if not (_conjunct_aliases(c) & sources)
                ]
                for source in sources:
                    aliases.remove(source)
                changed = True
                break

        doc_cols = ("pre", "size", "level", "kind", "name", "value", "data")
        renumber = {old: f"d{i + 1}" for i, old in enumerate(aliases)}
        rename_map: dict[str, str] = {}
        for old, new in renumber.items():
            for c in doc_cols:
                rename_map[f"{old}.{c}"] = f"{new}.{c}"
        self.conjuncts = [c.rename(rename_map) for c in self.conjuncts]
        for colmap in colmaps:
            for key_name in list(colmap):
                expr = colmap[key_name]
                colmap[key_name] = expr.rename(rename_map)
        return [renumber[a] for a in aliases]

    def _match_witness(
        self, seed: str, aliases: list[str], protected: set[str]
    ) -> dict[str, str] | None:
        """Try to build a substitution ``M`` (source alias -> kept
        alias) starting from ``seed`` such that every conjunct touching
        a source, renamed per ``M``, already exists among the conjuncts
        touching no source.  Returns ``M`` or ``None``."""
        by_alias: dict[str, list[Expr]] = {}
        for conjunct in self.conjuncts:
            for alias in _conjunct_aliases(conjunct):
                by_alias.setdefault(alias, []).append(conjunct)

        def local_signature(alias: str) -> frozenset:
            hole = _mapping_to_rename({alias: "d0"})
            return frozenset(
                c.rename(hole)
                for c in by_alias.get(alias, ())
                if _conjunct_aliases(c) == {alias}
            )

        seed_signature = local_signature(seed)
        for target in aliases:
            if target == seed or local_signature(target) != seed_signature:
                continue
            mapping = self._grow_mapping(
                {seed: target}, aliases, protected, by_alias
            )
            if mapping is not None:
                return mapping
        return None

    def _grow_mapping(
        self,
        mapping: dict[str, str],
        aliases: list[str],
        protected: set[str],
        by_alias: dict[str, list[Expr]],
    ) -> dict[str, str] | None:
        """Extend a candidate substitution until it closes, pulling in
        further aliases when a conjunct references one; bounded search
        that gives up on ambiguity beyond the first consistent image."""
        pending = list(mapping)
        seen_conjuncts: set[int] = set()
        budget = 64
        while pending:
            budget -= 1
            if budget < 0:
                return None
            source = pending.pop()
            for conjunct in by_alias.get(source, ()):
                if id(conjunct) in seen_conjuncts:
                    continue
                seen_conjuncts.add(id(conjunct))
                involved = _conjunct_aliases(conjunct)
                unmapped = [
                    a for a in involved if a not in mapping and a not in protected
                ]
                # protected aliases stay fixed (identity)
                unresolved = [a for a in unmapped]
                if not unresolved:
                    if not self._image_exists(conjunct, mapping):
                        return None
                    continue
                if len(unresolved) > 1:
                    return None  # too entangled; give up
                hole = unresolved[0]
                image = self._find_hole_image(conjunct, mapping, hole)
                if image is None:
                    return None
                if image in mapping or image == hole:
                    return None
                mapping[hole] = image
                pending.append(hole)
        # sources may not be images of other sources and must be gone
        sources = set(mapping)
        if sources & set(mapping.values()):
            return None
        # final verification: every conjunct touching a source maps to
        # an existing conjunct among the untouched ones
        rename = _mapping_to_rename(mapping)
        untouched = {
            c for c in self.conjuncts if not (_conjunct_aliases(c) & sources)
        }
        for conjunct in self.conjuncts:
            if _conjunct_aliases(conjunct) & sources:
                if conjunct.rename(rename) not in untouched:
                    return None
        return mapping

    def _image_exists(self, conjunct: Expr, mapping: dict[str, str]) -> bool:
        renamed = conjunct.rename(_mapping_to_rename(mapping))
        sources = set(mapping)
        for other in self.conjuncts:
            if _conjunct_aliases(other) & sources:
                continue
            if other == renamed:
                return True
        return False

    def _find_hole_image(
        self, conjunct: Expr, mapping: dict[str, str], hole: str
    ) -> str | None:
        """The alias ``v`` such that renaming ``hole -> v`` (on top of
        the current mapping) turns ``conjunct`` into an existing
        conjunct; None when no (unambiguous) image exists."""
        partial = conjunct.rename(_mapping_to_rename(mapping))
        sources = set(mapping)
        for other in self.conjuncts:
            other_aliases = _conjunct_aliases(other)
            if other_aliases & sources:
                continue
            for candidate in other_aliases:
                if candidate in sources:
                    continue
                trial = partial.rename(_mapping_to_rename({hole: candidate}))
                if trial == other:
                    return candidate
        return None


@dataclass
class FlatQuery:
    """The declarative content of an isolated plan: the structured form
    behind the single SQL block, also consumed directly by the
    relational optimizer in :mod:`repro.planner`.

    All expressions reference *qualified* pseudo-columns ``dN.col``
    over the ``doc`` aliases, or constants.
    """

    aliases: list[str]
    conjuncts: list[Expr]
    item: Expr
    order: list[Expr]
    distinct: list[Expr] | None  # full δ column basis, or None
    impossible: bool = False


def flatten_query(root: Serialize) -> FlatQuery:
    """Flatten an isolated plan to its declarative :class:`FlatQuery`.

    Raises
    ------
    CodegenError
        If the plan still contains blocking operators below the tail
        (i.e. isolation did not reach join-graph shape).
    """
    split = extract_join_graph(root)
    flattener = _Flattener()
    colmap = flattener.flatten(split.graph_root)

    distinct_cols: list[str] | None = None
    rank_orders: dict[str, list[Expr]] = {}
    snapshots: list[dict[str, Expr]] = [colmap]

    # walk the tail bottom-up (graph side first)
    for op in reversed(split.tail):
        if isinstance(op, Serialize):
            continue
        if isinstance(op, Distinct):
            if distinct_cols is not None:
                raise CodegenError("more than one δ in the plan tail")
            distinct_cols = list(op.columns)
            distinct_map = dict(colmap)
            snapshots.append(distinct_map)
        elif isinstance(op, Project):
            colmap = {new: colmap[old] for new, old in op.cols}
            snapshots.append(colmap)
        elif isinstance(op, Attach):
            colmap = dict(colmap)
            colmap[op.col] = Const(op.value)
            snapshots.append(colmap)
        elif isinstance(op, RowRank):
            marker = f"<rank:{id(op)}>"
            rank_orders[marker] = [colmap[b] for b in op.order]
            colmap = dict(colmap)
            colmap[op.col] = col(marker)
            snapshots.append(colmap)
        else:
            raise CodegenError(f"unexpected tail operator {op.label()}")

    # rank order expressions were lifted out of the column maps; hand
    # them to the unifier as pseudo-maps so they get rewritten too.
    rank_maps = [
        {str(i): e for i, e in enumerate(orders)}
        for orders in rank_orders.values()
    ]
    aliases = flattener.unify_aliases(snapshots + rank_maps)
    for rank_map, key in zip(rank_maps, list(rank_orders)):
        rank_orders[key] = [rank_map[str(i)] for i in range(len(rank_map))]

    if distinct_cols is not None:
        # aliases surfacing in the SELECT / ORDER BY must survive
        protected: set[str] = set()
        surface_exprs = [colmap[root.item], colmap[root.pos]]
        surface_exprs += [distinct_map[c] for c in distinct_cols]
        for orders in rank_orders.values():
            surface_exprs += orders
        for expr in surface_exprs:
            for name in expr.cols():
                m = _QUALIFIED.match(name)
                if m:
                    protected.add(m.group(1))
        aliases = flattener.drop_redundant_witnesses(
            aliases, protected, snapshots + rank_maps
        )
        for rank_map, key in zip(rank_maps, list(rank_orders)):
            rank_orders[key] = [rank_map[str(i)] for i in range(len(rank_map))]

    def is_rank(expr: Expr) -> bool:
        return isinstance(expr, ColRef) and expr.name.startswith("<rank:")

    item_expr = colmap[root.item]
    pos_expr = colmap[root.pos]
    if isinstance(pos_expr, ColRef) and pos_expr.name in rank_orders:
        order_exprs = rank_orders[pos_expr.name]
    elif is_rank(pos_expr):
        raise CodegenError("unresolved rank column in serialize position")
    else:
        order_exprs = [pos_expr]
    if is_rank(item_expr) or any(is_rank(e) for e in order_exprs):
        raise CodegenError("rank column used outside the serialize order")

    distinct_exprs: list[Expr] | None = None
    if distinct_cols is not None:
        distinct_exprs = [
            distinct_map[c]
            for c in distinct_cols
            if not is_rank(distinct_map[c])
        ]
    return FlatQuery(
        aliases=aliases,
        conjuncts=flattener.conjuncts,
        item=item_expr,
        order=list(order_exprs),
        distinct=distinct_exprs,
        impossible=flattener.impossible,
    )


def generate_join_graph_sql(root: Serialize) -> SQLQuery:
    """Render an isolated plan as a single
    SELECT-DISTINCT-FROM-WHERE-ORDER BY block (Figs. 8 and 9)."""
    flat = flatten_query(root)

    def render(expr: Expr) -> str:
        return expr.to_sql(lambda c: c)

    item_rendered = render(flat.item)
    order_exprs = [render(e) for e in flat.order]

    # assemble the SELECT list
    select_items: list[tuple[str, str]] = []  # (alias, expr)

    def add(expr: str, base: str) -> str:
        for alias, existing in select_items:
            if existing == expr:
                return alias
        taken = {a for a, _ in select_items}
        alias = base if base not in taken else f"{base}{len(select_items)}"
        select_items.append((alias, expr))
        return alias

    item_alias = add(item_rendered, "item")
    if flat.distinct is not None:
        for i, expr in enumerate(flat.distinct):
            add(render(expr), f"k{i + 1}")
    for i, expr in enumerate(order_exprs):
        add(expr, f"o{i + 1}")

    select_clause = ", ".join(f"{expr} AS {alias}" for alias, expr in select_items)
    distinct_kw = "DISTINCT " if flat.distinct is not None else ""
    lines = [f"SELECT {distinct_kw}{select_clause}"]
    if flat.aliases:
        lines.append("FROM " + ", ".join(f"doc AS {a}" for a in flat.aliases))
    from repro.algebra.expressions import Or

    conjunct_sql = [
        f"({render(c)})" if isinstance(c, Or) else render(c)
        for c in flat.conjuncts
    ]
    if flat.impossible:
        conjunct_sql.append("1 = 0")
    if conjunct_sql:
        lines.append("WHERE " + "\n  AND ".join(conjunct_sql))
    order_by = list(order_exprs)
    if item_rendered not in order_by:
        order_by.append(item_rendered)  # deterministic tie-break
    # the unary + prevents the back-end from satisfying ORDER BY via an
    # index-ordered outer scan — ordering is the plan *tail*, not a
    # join-order constraint (cf. the paper's tail/graph separation)
    lines.append("ORDER BY " + ", ".join(f"+{term}" for term in order_by))
    return SQLQuery(
        text="\n".join(lines),
        select_aliases=[a for a, _ in select_items],
        item_alias=item_alias,
        doc_instances=len(flat.aliases),
        distinct=flat.distinct is not None,
        order_by=order_by,
    )
