"""SQLite execution back-end.

Plays the role of the paper's IBM DB2 V9 instance: hosts the tabular
XML infoset encoding as a plain relational table, builds the composite
B-tree index set proposed by the design advisor (paper Table 6), and
executes the generated SQL — either the single join-graph block or the
stacked CTE chain.
"""

from __future__ import annotations

import sqlite3
import time
from typing import Sequence

from repro.algebra.expressions import Value
from repro.faults.injector import on_execute as _fault_on_execute
from repro.infoset.encoding import DocTable
from repro.obs import get_metrics, get_tracer
from repro.sql.codegen import SQLQuery

#: Table 6 of the paper: composite B-tree keys proposed by db2advis,
#: with the deployment each key serves.
#: (p:pre, s:size, l:level, k:kind, n:name, v:value, d:data —
#:  ``s`` is indexed as ``pre + size`` so range continuations can be
#:  answered from the index, matching the paper's ``s: pre + size``.)
TABLE6_INDEXES: dict[str, tuple[str, ...]] = {
    "idx_nkspl": ("name", "kind", "size", "pre", "level"),
    "idx_nksp": ("name", "kind", "size", "pre"),
    "idx_nlkp": ("name", "level", "kind", "pre"),
    "idx_nlkps": ("name", "level", "kind", "pre", "size"),
    "idx_vnlkp": ("value", "name", "level", "kind", "pre"),
    "idx_nlkpv": ("name", "level", "kind", "pre", "value"),
    "idx_nkdlp": ("name", "kind", "data", "level", "pre"),
    "idx_p_nvkls": ("pre", "name", "value", "kind", "level", "size"),
}


class SQLiteBackend:
    """An off-the-shelf RDBMS hosting the ``doc`` encoding.

    Parameters
    ----------
    table:
        The shredded document table to load (may be ``None`` when
        ``load=False``: an attach-only connection to a database some
        other backend already populated).
    indexes:
        Mapping index-name -> key column tuple; defaults to the paper's
        Table 6 set.  Pass ``{}`` for an index-less baseline.
    database:
        The SQLite database to connect to.  Defaults to a private
        ``:memory:`` instance; the service layer's connection pool
        passes a ``file:...?mode=memory&cache=shared`` URI instead so
        several threads share one in-memory instance (set ``uri=True``).
    uri:
        Interpret ``database`` as an SQLite URI.
    load:
        Create and populate the ``doc`` table.  ``False`` for pool
        worker connections attaching to an already-loaded shared
        database.
    cached_statements:
        Size of sqlite3's per-connection prepared-statement cache.
        Repeated queries skip re-preparing entirely — the
        prepared-statement-reuse half of the service layer's win.
    """

    def __init__(
        self,
        table: DocTable | None,
        indexes: dict[str, tuple[str, ...]] | None = None,
        *,
        database: str = ":memory:",
        uri: bool = False,
        load: bool = True,
        cached_statements: int = 256,
    ):
        self.connection = sqlite3.connect(
            database,
            uri=uri,
            cached_statements=cached_statements,
            # connections are handed out one-per-thread by the service
            # pool but closed centrally on invalidation
            check_same_thread=False,
            # manual transaction control: the bulk load brackets its own
            # BEGIN/COMMIT, and the read-only serving path never needs
            # the implicit-transaction machinery
            isolation_level=None,
        )
        self.indexes = TABLE6_INDEXES if indexes is None else indexes
        if load:
            if table is None:
                raise ValueError("load=True requires a document table")
            try:
                self._load(table)
            except BaseException:
                # a half-loaded backend is unusable: release the
                # connection instead of leaking it to the GC
                self.connection.close()
                raise

    def _load(self, table: DocTable) -> None:
        with get_tracer().span(
            "sql.load", rows=len(table), indexes=len(self.indexes)
        ):
            start = time.perf_counter_ns()
            self._load_inner(table)
            get_metrics().observe("sql.load_ns", time.perf_counter_ns() - start)

    def _load_inner(self, table: DocTable) -> None:
        cur = self.connection.cursor()
        # bulk-load fast path: journaling and fsyncs buy nothing for a
        # rebuild-from-scratch load (in-memory or otherwise), and one
        # explicit transaction around inserts + index builds avoids
        # per-statement commit overhead
        cur.execute("PRAGMA journal_mode=OFF")
        cur.execute("PRAGMA synchronous=OFF")
        cur.execute("PRAGMA temp_store=MEMORY")
        cur.execute("BEGIN")
        cur.execute(
            """
            CREATE TABLE doc (
                pre   INTEGER PRIMARY KEY,
                size  INTEGER NOT NULL,
                level INTEGER NOT NULL,
                kind  INTEGER NOT NULL,
                name  TEXT,
                value TEXT,
                data  REAL
            )
            """
        )
        cur.executemany(
            "INSERT INTO doc VALUES (?, ?, ?, ?, ?, ?, ?)",
            (tuple(row) for row in table.rows()),
        )
        for index_name, key in self.indexes.items():
            cols = ", ".join(key)
            cur.execute(f"CREATE INDEX {index_name} ON doc ({cols})")
        cur.execute("COMMIT")
        cur.execute("ANALYZE")

    # -- zero-copy transport -------------------------------------------

    def serialize(self) -> bytes:
        """The loaded database — table, Table 6 indexes, ANALYZE
        statistics — as one flat byte string (SQLite's native
        serialization).  A worker process :meth:`from_serialized`'s the
        bytes straight into its own connection: no XML re-parse, no
        re-insert, no index rebuild."""
        with get_tracer().span("sql.serialize"):
            start = time.perf_counter_ns()
            data = self.connection.serialize()
            get_metrics().observe(
                "sql.serialize_ns", time.perf_counter_ns() - start
            )
        return data

    @classmethod
    def from_serialized(
        cls, data: bytes, *, cached_statements: int = 256
    ) -> "SQLiteBackend":
        """A backend attached to a database image produced by
        :meth:`serialize` — the zero-copy shard attach: SQLite adopts
        the byte string as the database file in place of parsing and
        loading rows."""
        backend = cls(None, load=False, cached_statements=cached_statements)
        with get_tracer().span("sql.deserialize"):
            start = time.perf_counter_ns()
            backend.connection.deserialize(data)
            get_metrics().observe(
                "sql.deserialize_ns", time.perf_counter_ns() - start
            )
        return backend

    # -- execution -----------------------------------------------------

    def _execute_timed(
        self, label: str, sql: str, params: Sequence = ()
    ) -> list[tuple]:
        """The one timing funnel every statement goes through: opens a
        span, fetches, and records statement/row metrics.  When a trace
        is being captured, the ``EXPLAIN QUERY PLAN`` output for the
        statement is attached to the span as well."""
        # chaos hook (no-op unless an injector is installed): may raise
        # a transient error, stall, or kill this connection — the
        # service layer's retry/deadline machinery is built against
        # exactly the failures delivered here
        _fault_on_execute(self.connection)
        tracer = get_tracer()
        with tracer.span(label, statement=_statement_head(sql)) as span:
            if tracer.enabled:
                span.set(query_plan=self._explain_text(sql, params))
            cursor = self.connection.execute(sql, params)
            rows = cursor.fetchall()
            span.set(rows=len(rows))
        metrics = get_metrics()
        metrics.count("sql.statements")
        metrics.count("sql.rows", len(rows))
        if tracer.enabled:
            # span timing is only recorded when tracing; mirror it into
            # the statement-latency histogram (ns)
            metrics.observe("sql.run_ns", span.duration_ns)  # type: ignore[union-attr]
        return rows

    def _explain_text(self, sql: str, params: Sequence = ()) -> list[str]:
        rows = self.connection.execute(
            "EXPLAIN QUERY PLAN " + sql, params
        ).fetchall()
        return [row[-1] for row in rows]

    def run(self, query: SQLQuery) -> list[Value]:
        """Execute a generated query; returns the item sequence (the
        ``item`` output column, in result order)."""
        item_index = query.select_aliases.index(query.item_alias)
        rows = self._execute_timed("sql.run", query.text)
        return [row[item_index] for row in rows]

    def run_shipped(self, sql_text: str, item_index: int) -> list[Value]:
        """Execute a shipped plan rendering — the SQL text plus the
        item column's SELECT-list position — as :meth:`run` would
        execute the :class:`SQLQuery` it came from.  This is the worker
        process entry point: the plan was compiled (and its item column
        resolved) parent-side, so only plain builtins cross the pipe."""
        rows = self._execute_timed("sql.run", sql_text)
        return [row[item_index] for row in rows]

    def run_raw(self, sql: str, params: Sequence = ()) -> list[tuple]:
        """Execute arbitrary SQL (used by tests and the benchmarks);
        shares the timing/metrics funnel with :meth:`run`."""
        return self._execute_timed("sql.run_raw", sql, params)

    def explain(self, query: SQLQuery) -> list[str]:
        """SQLite's EXPLAIN QUERY PLAN rows for a generated query —
        shows which of the Table 6 indexes the optimizer picked."""
        return self._explain_text(query.text)

    def close(self) -> None:
        self.connection.close()

    def __enter__(self) -> "SQLiteBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _statement_head(sql: str, limit: int = 80) -> str:
    """First line of a statement, truncated — the span label."""
    head = sql.lstrip().splitlines()[0] if sql.strip() else sql
    return head if len(head) <= limit else head[: limit - 1] + "…"
