"""Minimal, dependency-free XML substrate.

This package provides the XML document model the paper's tabular infoset
encoding (Fig. 2) is built on: a tree of documents, elements, attributes,
text nodes, comments and processing instructions, together with a
hand-written well-formedness-checking parser and a serializer.

The model intentionally ignores namespaces beyond carrying prefixed QNames
verbatim — the paper's ``doc`` encoding stores tag names as opaque strings.
"""

from repro.xmltree.model import (
    AttributeNode,
    CommentNode,
    DocumentNode,
    ElementNode,
    NodeKind,
    PINode,
    TextNode,
    XMLNode,
)
from repro.xmltree.parser import parse_document, parse_fragment
from repro.xmltree.serializer import serialize

__all__ = [
    "AttributeNode",
    "CommentNode",
    "DocumentNode",
    "ElementNode",
    "NodeKind",
    "PINode",
    "TextNode",
    "XMLNode",
    "parse_document",
    "parse_fragment",
    "serialize",
]
