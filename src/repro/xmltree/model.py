"""XML tree model.

The node kinds mirror the ``kind`` column of the paper's tabular infoset
encoding (Fig. 2): DOC, ELEM, ATTR, TEXT plus COMMENT and PI for
completeness.  Attributes are first-class nodes (they occupy rows of the
``doc`` table immediately after their owner element), hence
:class:`AttributeNode` lives in the same hierarchy as the other nodes.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Iterator


class NodeKind(IntEnum):
    """Node kind codes as stored in the ``kind`` column of table ``doc``."""

    DOC = 0
    ELEM = 1
    ATTR = 2
    TEXT = 3
    COMMENT = 4
    PI = 5


class XMLNode:
    """Base class of all tree nodes.

    Attributes
    ----------
    parent:
        Owning node, or ``None`` for a document root.
    """

    kind: NodeKind

    __slots__ = ("parent",)

    def __init__(self) -> None:
        self.parent: XMLNode | None = None

    # -- structure ---------------------------------------------------------

    @property
    def children(self) -> list["XMLNode"]:
        """Child nodes in document order (attributes are *not* children)."""
        return []

    def iter_subtree(self) -> Iterator["XMLNode"]:
        """Yield this node and its entire subtree in document order.

        Attributes of an element are yielded directly after the element,
        before its children — exactly the order in which the infoset
        shredder assigns ``pre`` ranks (Fig. 2).
        """
        yield self
        if isinstance(self, ElementNode):
            yield from self.attributes
        for child in self.children:
            yield from child.iter_subtree()

    def string_value(self) -> str:
        """XPath string value: concatenation of descendant text."""
        return ""

    def subtree_node_count(self) -> int:
        """Number of nodes strictly below this node (the ``size`` column)."""
        return sum(1 for _ in self.iter_subtree()) - 1


class DocumentNode(XMLNode):
    """Document root node; ``name`` carries the document URI."""

    kind = NodeKind.DOC
    __slots__ = ("uri", "_children")

    def __init__(self, uri: str = ""):
        super().__init__()
        self.uri = uri
        self._children: list[XMLNode] = []

    @property
    def children(self) -> list[XMLNode]:
        return self._children

    def append(self, child: XMLNode) -> None:
        child.parent = self
        self._children.append(child)

    @property
    def root_element(self) -> "ElementNode":
        """The single element child of the document."""
        for child in self._children:
            if isinstance(child, ElementNode):
                return child
        raise ValueError("document has no root element")

    def string_value(self) -> str:
        return "".join(c.string_value() for c in self._children)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DocumentNode(uri={self.uri!r})"


class ElementNode(XMLNode):
    """Element node with an ordered attribute list and child list."""

    kind = NodeKind.ELEM
    __slots__ = ("tag", "attributes", "_children")

    def __init__(self, tag: str):
        super().__init__()
        self.tag = tag
        self.attributes: list[AttributeNode] = []
        self._children: list[XMLNode] = []

    @property
    def children(self) -> list[XMLNode]:
        return self._children

    def append(self, child: XMLNode) -> None:
        child.parent = self
        self._children.append(child)

    def set_attribute(self, name: str, value: str) -> "AttributeNode":
        attr = AttributeNode(name, value)
        attr.parent = self
        self.attributes.append(attr)
        return attr

    def get_attribute(self, name: str) -> str | None:
        for attr in self.attributes:
            if attr.name == name:
                return attr.value
        return None

    def find_all(self, tag: str) -> list["ElementNode"]:
        """All descendant elements with the given tag, document order."""
        return [
            n
            for n in self.iter_subtree()
            if isinstance(n, ElementNode) and n is not self and n.tag == tag
        ]

    def string_value(self) -> str:
        return "".join(c.string_value() for c in self._children)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ElementNode(tag={self.tag!r})"


class AttributeNode(XMLNode):
    """Attribute node.  ``string_value`` is the attribute value."""

    kind = NodeKind.ATTR
    __slots__ = ("name", "value")

    def __init__(self, name: str, value: str):
        super().__init__()
        self.name = name
        self.value = value

    def string_value(self) -> str:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"AttributeNode({self.name!r}={self.value!r})"


class TextNode(XMLNode):
    """Character data node."""

    kind = NodeKind.TEXT
    __slots__ = ("text",)

    def __init__(self, text: str):
        super().__init__()
        self.text = text

    def string_value(self) -> str:
        return self.text

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TextNode({self.text!r})"


class CommentNode(XMLNode):
    """Comment node; excluded from element string values."""

    kind = NodeKind.COMMENT
    __slots__ = ("text",)

    def __init__(self, text: str):
        super().__init__()
        self.text = text

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CommentNode({self.text!r})"


class PINode(XMLNode):
    """Processing-instruction node."""

    kind = NodeKind.PI
    __slots__ = ("target", "text")

    def __init__(self, target: str, text: str):
        super().__init__()
        self.target = target
        self.text = text

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PINode({self.target!r})"
