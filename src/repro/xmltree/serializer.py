"""XML serialization: the inverse of :mod:`repro.xmltree.parser`."""

from __future__ import annotations

from repro.xmltree.model import (
    AttributeNode,
    CommentNode,
    DocumentNode,
    ElementNode,
    PINode,
    TextNode,
    XMLNode,
)


def escape_text(text: str) -> str:
    """Escape character data for element content."""
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attribute(text: str) -> str:
    """Escape character data for a double-quoted attribute value."""
    return escape_text(text).replace('"', "&quot;")


def serialize(node: XMLNode, indent: int | None = None) -> str:
    """Serialize a node (and its subtree) back to XML text.

    Parameters
    ----------
    node:
        Any node of the tree model.  Serializing an
        :class:`AttributeNode` yields ``name="value"``.
    indent:
        When given, pretty-print with this many spaces per nesting level.
        ``None`` (the default) produces compact output that round-trips
        through the parser.
    """
    parts: list[str] = []
    _serialize_into(node, parts, indent, 0)
    return "".join(parts)


def _serialize_into(
    node: XMLNode, parts: list[str], indent: int | None, depth: int
) -> None:
    pad = "" if indent is None else "\n" + " " * (indent * depth)
    if isinstance(node, DocumentNode):
        for child in node.children:
            _serialize_into(child, parts, indent, depth)
        return
    if isinstance(node, TextNode):
        parts.append(escape_text(node.text))
        return
    if isinstance(node, AttributeNode):
        parts.append(f'{node.name}="{escape_attribute(node.value)}"')
        return
    if isinstance(node, CommentNode):
        parts.append(f"{pad}<!--{node.text}-->")
        return
    if isinstance(node, PINode):
        parts.append(f"{pad}<?{node.target} {node.text}?>")
        return
    assert isinstance(node, ElementNode)
    attrs = "".join(
        f' {a.name}="{escape_attribute(a.value)}"' for a in node.attributes
    )
    if not node.children:
        parts.append(f"{pad}<{node.tag}{attrs}/>")
        return
    only_text = all(isinstance(c, TextNode) for c in node.children)
    parts.append(f"{pad}<{node.tag}{attrs}>")
    child_indent = None if only_text else indent
    for child in node.children:
        _serialize_into(child, parts, child_indent, depth + 1)
    closing_pad = "" if (indent is None or only_text) else "\n" + " " * (indent * depth)
    parts.append(f"{closing_pad}</{node.tag}>")
