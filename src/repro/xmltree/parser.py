"""Hand-written, well-formedness-checking XML parser.

Supports the XML subset needed by the paper's workloads: elements,
attributes (single or double quoted), character data with the five
predefined entities plus numeric character references, CDATA sections,
comments, processing instructions, and an optional XML declaration /
DOCTYPE which are skipped.  Namespaces are not resolved; prefixed names
are kept verbatim (the tabular encoding stores tag names as strings).

By default whitespace-only text nodes between elements are dropped —
this matches how XML benchmark documents (XMark, DBLP) are shredded, and
keeps node counts meaningful.  Pass ``keep_whitespace=True`` to retain
them.
"""

from __future__ import annotations

from repro.errors import XMLParseError
from repro.xmltree.model import (
    CommentNode,
    DocumentNode,
    ElementNode,
    PINode,
    TextNode,
)

_PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "quot": '"',
    "apos": "'",
}

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:")
_NAME_CHARS = _NAME_START | set("0123456789.-")


class _Scanner:
    """Character-level scanner with line/column tracking for errors."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.length = len(text)

    def error(self, message: str) -> XMLParseError:
        consumed = self.text[: self.pos]
        line = consumed.count("\n") + 1
        column = self.pos - (consumed.rfind("\n") + 1) + 1
        return XMLParseError(message, line, column)

    def at_end(self) -> bool:
        return self.pos >= self.length

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < self.length else ""

    def startswith(self, prefix: str) -> bool:
        return self.text.startswith(prefix, self.pos)

    def advance(self, count: int = 1) -> None:
        self.pos += count

    def skip_whitespace(self) -> None:
        while self.pos < self.length and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def expect(self, literal: str) -> None:
        if not self.startswith(literal):
            raise self.error(f"expected {literal!r}")
        self.pos += len(literal)

    def read_name(self) -> str:
        start = self.pos
        if self.pos >= self.length or self.text[self.pos] not in _NAME_START:
            raise self.error("expected XML name")
        self.pos += 1
        while self.pos < self.length and self.text[self.pos] in _NAME_CHARS:
            self.pos += 1
        return self.text[start : self.pos]

    def read_until(self, terminator: str, what: str) -> str:
        end = self.text.find(terminator, self.pos)
        if end < 0:
            raise self.error(f"unterminated {what}")
        chunk = self.text[self.pos : end]
        self.pos = end + len(terminator)
        return chunk


def _decode_entities(raw: str, scanner: _Scanner) -> str:
    """Replace entity and character references in ``raw``."""
    if "&" not in raw:
        return raw
    out: list[str] = []
    i = 0
    while i < len(raw):
        ch = raw[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = raw.find(";", i)
        if end < 0:
            raise scanner.error("unterminated entity reference")
        entity = raw[i + 1 : end]
        if entity.startswith("#x") or entity.startswith("#X"):
            out.append(chr(int(entity[2:], 16)))
        elif entity.startswith("#"):
            out.append(chr(int(entity[1:])))
        elif entity in _PREDEFINED_ENTITIES:
            out.append(_PREDEFINED_ENTITIES[entity])
        else:
            raise scanner.error(f"unknown entity &{entity};")
        i = end + 1
    return "".join(out)


def _parse_attributes(scanner: _Scanner, element: ElementNode) -> None:
    """Parse ``name="value"`` pairs up to (but excluding) ``>`` or ``/>``."""
    seen: set[str] = set()
    while True:
        scanner.skip_whitespace()
        ch = scanner.peek()
        if ch in (">", "/") or ch == "":
            return
        name = scanner.read_name()
        if name in seen:
            raise scanner.error(f"duplicate attribute {name!r}")
        seen.add(name)
        scanner.skip_whitespace()
        scanner.expect("=")
        scanner.skip_whitespace()
        quote = scanner.peek()
        if quote not in ("'", '"'):
            raise scanner.error("attribute value must be quoted")
        scanner.advance()
        raw = scanner.read_until(quote, "attribute value")
        element.set_attribute(name, _decode_entities(raw, scanner))


def _parse_content(
    scanner: _Scanner, parent: ElementNode | DocumentNode, keep_whitespace: bool
) -> None:
    """Parse element content until the parent's end tag (or end of input
    for document-level content)."""
    is_document = isinstance(parent, DocumentNode)
    text_parts: list[str] = []

    def flush_text() -> None:
        if not text_parts:
            return
        text = "".join(text_parts)
        text_parts.clear()
        if not keep_whitespace and not text.strip():
            return
        if is_document:
            if text.strip():
                raise scanner.error("character data outside root element")
            return
        parent.append(TextNode(text))

    while not scanner.at_end():
        if scanner.startswith("</"):
            flush_text()
            if is_document:
                raise scanner.error("unexpected end tag at document level")
            scanner.advance(2)
            name = scanner.read_name()
            scanner.skip_whitespace()
            scanner.expect(">")
            if name != parent.tag:
                raise scanner.error(
                    f"mismatched end tag </{name}> for <{parent.tag}>"
                )
            return
        if scanner.startswith("<!--"):
            flush_text()
            scanner.advance(4)
            comment = scanner.read_until("-->", "comment")
            parent.append(CommentNode(comment))
            continue
        if scanner.startswith("<![CDATA["):
            scanner.advance(9)
            text_parts.append(scanner.read_until("]]>", "CDATA section"))
            continue
        if scanner.startswith("<?"):
            flush_text()
            scanner.advance(2)
            target = scanner.read_name()
            body = scanner.read_until("?>", "processing instruction").lstrip()
            if target.lower() != "xml":  # skip the XML declaration
                parent.append(PINode(target, body))
            continue
        if scanner.startswith("<!DOCTYPE"):
            flush_text()
            _skip_doctype(scanner)
            continue
        if scanner.peek() == "<":
            flush_text()
            scanner.advance()
            tag = scanner.read_name()
            element = ElementNode(tag)
            _parse_attributes(scanner, element)
            if scanner.startswith("/>"):
                scanner.advance(2)
                parent.append(element)
                continue
            scanner.expect(">")
            parent.append(element)
            _parse_content(scanner, element, keep_whitespace)
            continue
        # character data
        start = scanner.pos
        next_markup = scanner.text.find("<", start)
        if next_markup < 0:
            next_markup = scanner.length
        raw = scanner.text[start:next_markup]
        scanner.pos = next_markup
        text_parts.append(_decode_entities(raw, scanner))

    flush_text()
    if not is_document:
        raise scanner.error(f"unterminated element <{parent.tag}>")


def _skip_doctype(scanner: _Scanner) -> None:
    """Skip a DOCTYPE declaration, including an internal subset."""
    depth = 0
    while not scanner.at_end():
        ch = scanner.peek()
        scanner.advance()
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        elif ch == ">" and depth <= 0:
            return
    raise scanner.error("unterminated DOCTYPE")


def parse_document(text: str, uri: str = "", keep_whitespace: bool = False) -> DocumentNode:
    """Parse a complete XML document.

    Parameters
    ----------
    text:
        The XML document text.
    uri:
        Document URI recorded on the :class:`DocumentNode` (the ``name``
        column of the DOC row in table ``doc``).
    keep_whitespace:
        Retain whitespace-only text nodes between elements.

    Returns
    -------
    DocumentNode
        The parsed document tree.

    Raises
    ------
    XMLParseError
        If the input is not well-formed.
    """
    scanner = _Scanner(text)
    document = DocumentNode(uri)
    _parse_content(scanner, document, keep_whitespace)
    elements = [c for c in document.children if isinstance(c, ElementNode)]
    if len(elements) != 1:
        raise scanner.error(
            f"document must have exactly one root element, found {len(elements)}"
        )
    return document


def parse_fragment(text: str, keep_whitespace: bool = False) -> ElementNode:
    """Parse a single-rooted XML fragment and return its root element."""
    return parse_document(text, uri="", keep_whitespace=keep_whitespace).root_element
