"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the failing subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class XMLParseError(ReproError):
    """Raised when XML text is not well-formed.

    Carries the (1-based) ``line`` and ``column`` of the offending input
    position when known.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)
        self.line = line
        self.column = column


class XQuerySyntaxError(ReproError):
    """Raised when an XQuery expression cannot be parsed."""

    def __init__(self, message: str, position: int | None = None):
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class XQueryTypeError(ReproError):
    """Raised when an XQuery expression is outside the supported fragment
    or violates the static typing rules of the workhorse dialect."""


class CompileError(ReproError):
    """Raised when loop-lifting compilation fails."""


class RewriteError(ReproError):
    """Raised when join graph isolation encounters an inconsistent plan."""


class SanitizerError(RewriteError):
    """Raised by the plan sanitizer (:mod:`repro.analysis.rulecheck`)
    when a rewrite-rule application breaks a plan invariant or changes
    plan semantics.

    Carries the stable diagnostic ``code`` (``JGI…``), the offending
    ``rule`` name, and the full :class:`repro.analysis.Diagnostic`
    list.
    """

    def __init__(self, message: str, code: str, rule: str, diagnostics=()):
        super().__init__(message)
        self.code = code
        self.rule = rule
        self.diagnostics = list(diagnostics)


class CodegenError(ReproError):
    """Raised when an isolated plan cannot be rendered as a single
    SELECT-DISTINCT-FROM-WHERE-ORDER BY block."""


class PlanError(ReproError):
    """Raised by the relational optimizer / physical engine."""


class DocumentError(ReproError):
    """Raised when a referenced document URI is unknown to the store."""
