"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the failing subsystem.

Every class carries a stable, machine-readable ``code`` attribute
(dotted, ``repro.<subsystem>[.<condition>]``) for log pipelines and
API clients that must branch on failure kind without string-matching
messages.  Codes are part of the public API surface: they never change
for an existing class.  :class:`SanitizerError` refines its class code
per *instance* with the sanitizer's diagnostic code (``JGI…``).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""

    code = "repro.error"


class XMLParseError(ReproError):
    """Raised when XML text is not well-formed.

    Carries the (1-based) ``line`` and ``column`` of the offending input
    position when known.
    """

    code = "repro.xml.parse"

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)
        self.line = line
        self.column = column


class XQuerySyntaxError(ReproError):
    """Raised when an XQuery expression cannot be parsed."""

    code = "repro.xquery.syntax"

    def __init__(self, message: str, position: int | None = None):
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class XQueryTypeError(ReproError):
    """Raised when an XQuery expression is outside the supported fragment
    or violates the static typing rules of the workhorse dialect."""

    code = "repro.xquery.type"


class CompileError(ReproError):
    """Raised when loop-lifting compilation fails."""

    code = "repro.compile"


class RewriteError(ReproError):
    """Raised when join graph isolation encounters an inconsistent plan."""

    code = "repro.rewrite"


class SanitizerError(RewriteError):
    """Raised by the plan sanitizer (:mod:`repro.analysis.rulecheck`)
    when a rewrite-rule application breaks a plan invariant or changes
    plan semantics.

    Carries the stable diagnostic ``code`` (``JGI…``), the offending
    ``rule`` name, and the full :class:`repro.analysis.Diagnostic`
    list.
    """

    code = "repro.rewrite.sanitizer"

    def __init__(self, message: str, code: str, rule: str, diagnostics=()):
        super().__init__(message)
        self.code = code
        self.rule = rule
        self.diagnostics = list(diagnostics)


class AnalysisError(ReproError):
    """Raised by the static-analysis subsystem on internal
    inconsistencies — e.g. a containment witness that fails its
    independent re-verification (:mod:`repro.analysis.containment`)."""

    code = "repro.analysis"


class CodegenError(ReproError):
    """Raised when an isolated plan cannot be rendered as a single
    SELECT-DISTINCT-FROM-WHERE-ORDER BY block."""

    code = "repro.codegen"


class PlanError(ReproError):
    """Raised by the relational optimizer / physical engine."""

    code = "repro.plan"


class DocumentError(ReproError):
    """Raised when a referenced document URI is unknown to the store."""

    code = "repro.store.document"


class ServiceError(ReproError):
    """Base class for serving-layer failures (:mod:`repro.service`).

    Every subclass is a *clean, typed* outcome: the query was not
    answered, but the service state is intact and no partial or stale
    result escaped.  See ``docs/robustness.md`` for the failure model.
    """

    code = "repro.service"


class DeadlineExceeded(ServiceError):
    """The per-query deadline elapsed before a result was produced.

    Carries the ``budget`` (seconds granted) and ``elapsed`` (seconds
    actually spent) when known.  Raised by the deadline guard after the
    in-flight SQLite statement has been cancelled via the progress
    handler, so the backend connection is immediately reusable.
    """

    code = "repro.service.deadline"

    def __init__(
        self,
        message: str = "query deadline exceeded",
        budget: float | None = None,
        elapsed: float | None = None,
    ):
        if budget is not None:
            message = f"{message} (budget {budget:.3f}s"
            if elapsed is not None:
                message += f", elapsed {elapsed:.3f}s"
            message += ")"
        super().__init__(message)
        self.budget = budget
        self.elapsed = elapsed


class ServiceOverloaded(ServiceError):
    """Admission control fast-fail: the service already holds its
    configured maximum of in-flight/queued queries.  The caller should
    back off and resubmit; nothing was executed."""

    code = "repro.service.overloaded"


class QuotaExceeded(ServiceError):
    """Multi-tenant admission fast-fail: the tenant's token-bucket
    quota is exhausted for the current window (:mod:`repro.service.
    tenancy`).  Unlike :class:`ServiceOverloaded` — which signals that
    the *service* is saturated — this is a per-tenant verdict: other
    tenants are still being served.  Carries the ``tenant`` name and
    the ``retry_after_s`` hint (seconds until the bucket can grant one
    token again) when known."""

    code = "repro.service.quota"

    def __init__(
        self,
        message: str = "tenant quota exceeded",
        tenant: str | None = None,
        retry_after_s: float | None = None,
    ):
        if tenant is not None:
            message = f"{message} (tenant {tenant!r}"
            if retry_after_s is not None:
                message += f", retry after {retry_after_s:.3f}s"
            message += ")"
        super().__init__(message)
        self.tenant = tenant
        self.retry_after_s = retry_after_s


class CircuitOpenError(ServiceError):
    """The backend circuit breaker is open (repeated backend failures)
    and graceful degradation is disabled, so the query fails fast
    instead of queueing against a backend that is known to be sick."""

    code = "repro.service.circuit_open"


class BackendUnavailable(ServiceError):
    """The backend kept failing after bounded retries and the degraded
    (fresh uncached compile+execute) path could not answer either —
    or degradation is disabled.  The ``__cause__`` chain carries the
    final backend error."""

    code = "repro.service.backend_unavailable"


class PoolRetiredError(ServiceError):
    """A lease was requested on a retired :class:`BackendPool`
    snapshot.  Transient by construction: the owning service reacts by
    building a fresh pool for the current store version and retrying."""

    code = "repro.service.pool_retired"


class WorkerCrash(ServiceError):
    """A worker process died mid-request (pipe EOF / dead process).

    Transient by construction — the executor has already restarted the
    worker from the cached payload, so a retry runs against a fresh
    process — but *organic*: never ``injected``, so crashes stay out of
    the chaos accounting ledger.

    .. versionchanged:: 1.2
       Moved here from ``repro.service.procpool`` (which keeps a
       deprecated re-export shim).
    """

    code = "repro.service.worker_crash"
