"""The execution-engine enumeration.

One name for each of the four differential engines of
:mod:`repro.pipeline`.  ``Engine`` subclasses :class:`str`, so every
member compares (and serializes) equal to the wire string previous
releases used — ``Engine.JOINGRAPH_SQL == "joingraph-sql"`` — and
plain strings are still accepted at every API boundary, normalized
via :meth:`Engine.of`.
"""

from __future__ import annotations

import enum

__all__ = ["Engine"]


class Engine(str, enum.Enum):
    """The four result-identical execution engines.

    ``interpreter``           the algebra reference interpreter on the
                              stacked (un-isolated) plan — ground truth;
    ``isolated-interpreter``  the same interpreter on the isolated plan;
    ``stacked-sql``           the CTE chain on SQLite (the paper's
                              pre-isolation DB2 baseline);
    ``joingraph-sql``         the single SELECT-DISTINCT-FROM-WHERE-ORDER
                              BY block on SQLite (the paper's
                              contribution).
    """

    INTERPRETER = "interpreter"
    ISOLATED_INTERPRETER = "isolated-interpreter"
    STACKED_SQL = "stacked-sql"
    JOINGRAPH_SQL = "joingraph-sql"

    # StrEnum semantics on 3.10: render as the wire value everywhere
    # ("joingraph-sql", never "Engine.JOINGRAPH_SQL")
    __str__ = str.__str__
    __format__ = str.__format__

    @classmethod
    def of(cls, value: "Engine | str") -> "Engine":
        """Normalize a user-supplied engine name (string or member)."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            known = ", ".join(member.value for member in cls)
            raise ValueError(
                f"unknown engine {value!r} (expected one of: {known})"
            ) from None

    @classmethod
    def sql_engines(cls) -> tuple["Engine", ...]:
        """The engines whose compiled SQL text is backend-portable
        (what the scatter-gather executor can fan out across shards)."""
        return (cls.STACKED_SQL, cls.JOINGRAPH_SQL)
