"""Graphviz (dot) export for algebra DAGs and physical plans.

The paper presents its plans as DAG drawings (Figs. 4, 7) and operator
trees (Figs. 10, 11); these helpers produce equivalent ``dot`` text for
any plan in this repository::

    from repro.viz import algebra_to_dot, physical_to_dot
    open("q1.dot", "w").write(algebra_to_dot(compiled.isolated_plan))
    # then: dot -Tsvg q1.dot -o q1.svg
"""

from __future__ import annotations

from repro.algebra.dagutils import all_nodes
from repro.algebra.ops import (
    Distinct,
    DocScan,
    Join,
    Operator,
    RowId,
    RowRank,
)
from repro.planner.joinplan import PhysicalQuery
from repro.planner.physical import NLJoin, PhysicalOp


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def algebra_to_dot(root: Operator, title: str = "plan") -> str:
    """Render an algebra DAG as dot; blocking operators (δ, %, #) are
    highlighted, the shared ``doc`` leaf is boxed — making the Fig. 4
    vs Fig. 7 contrast visible at a glance."""
    lines = [
        f'digraph "{_escape(title)}" {{',
        "  rankdir=BT;",
        '  node [shape=plaintext, fontname="monospace", fontsize=10];',
    ]
    ids: dict[int, str] = {}
    for index, node in enumerate(all_nodes(root)):
        name = f"n{index}"
        ids[id(node)] = name
        label = _escape(node.label())
        style = ""
        if isinstance(node, (Distinct, RowRank, RowId)):
            style = ', shape=box, style=filled, fillcolor="#ffd9b3"'
        elif isinstance(node, DocScan):
            style = ', shape=box, style=filled, fillcolor="#d9e8ff"'
        elif isinstance(node, Join):
            style = ", shape=box"
        lines.append(f'  {name} [label="{label}"{style}];')
    for node in all_nodes(root):
        for child in node.children:
            lines.append(f"  {ids[id(child)]} -> {ids[id(node)]};")
    lines.append("}")
    return "\n".join(lines)


def physical_to_dot(plan: PhysicalQuery, title: str = "plan") -> str:
    """Render a physical plan tree as dot, in the style of the paper's
    Figs. 10/11 (NLJOIN spines with IXSCAN legs)."""
    lines = [
        f'digraph "{_escape(title)}" {{',
        "  rankdir=BT;",
        '  node [shape=box, fontname="monospace", fontsize=10];',
    ]
    counter = [0]

    def visit(op: PhysicalOp) -> str:
        name = f"p{counter[0]}"
        counter[0] += 1
        lines.append(f'  {name} [label="{_escape(op.describe())}"];')
        for child in op.children:
            child_name = visit(child)
            lines.append(f"  {child_name} -> {name};")
        if isinstance(op, NLJoin):
            probe_name = f"p{counter[0]}"
            counter[0] += 1
            lines.append(
                f'  {probe_name} [label="{_escape(op.probe.describe())}", '
                'style=filled, fillcolor="#d9e8ff"];'
            )
            lines.append(f"  {probe_name} -> {name};")
        return name

    visit(plan.root)
    lines.append("}")
    return "\n".join(lines)
