"""Recursive-descent parser for the XQuery workhorse fragment.

Grammar (cf. paper Fig. 1, plus the standard XPath abbreviations):

.. code-block:: text

    Expr       ::= FLWOR | IfExpr | OrExpr
    FLWOR      ::= (ForClause | LetClause)+ ('where' OrExpr)? 'return' Expr
    ForClause  ::= 'for' '$'Name 'in' Expr (',' '$'Name 'in' Expr)*
    LetClause  ::= 'let' '$'Name ':=' Expr
    IfExpr     ::= 'if' '(' OrExpr ')' 'then' Expr 'else' Expr
    OrExpr     ::= AndExpr ('or' AndExpr)*          -- 'or' rejected later
    AndExpr    ::= CompExpr ('and' CompExpr)*
    CompExpr   ::= PathExpr (CompOp PathExpr)?
    PathExpr   ::= ('/' | '//')? StepExpr (('/' | '//') StepExpr)*
    StepExpr   ::= Primary Predicate* | AxisStep
    AxisStep   ::= (Axis '::' | '@')? NodeTest Predicate*
    Primary    ::= '$'Name | 'doc' '(' String (',' String)* ')'
                 | 'collection' '(' (String (',' String)*)? ')' | Literal
                 | '(' ')' | '(' Expr (',' Expr)* ')' | '.'
    NodeTest   ::= QName | '*' | KindTest
    Predicate  ::= '[' OrExpr ']'
"""

from __future__ import annotations

from repro.errors import XQuerySyntaxError
from repro.xquery.ast import (
    ALL_AXES,
    AndExpr,
    COMPARISON_OPS,
    CollectionCall,
    Comparison,
    DocCall,
    EmptySequence,
    Expr,
    FLWOR,
    ForClause,
    IfExpr,
    LetClause,
    NodeTest,
    NumberLiteral,
    PathRoot,
    Predicate,
    SequenceExpr,
    StepExpr,
    StringLiteral,
    VarRef,
)
from repro.xquery.lexer import Token, tokenize

_KIND_TESTS = frozenset(
    (
        "element",
        "attribute",
        "text",
        "comment",
        "processing-instruction",
        "document-node",
        "node",
    )
)

#: "." — the context item inside a predicate; replaced during
#: normalization by the predicate's context variable.
class ContextItem(Expr):
    def __str__(self) -> str:
        return "."


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.i = 0

    # -- token helpers -------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.i + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.tokens[self.i]
        if token.kind != "eof":
            self.i += 1
        return token

    def error(self, message: str) -> XQuerySyntaxError:
        return XQuerySyntaxError(message, self.peek().pos)

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        token = self.peek()
        if token.kind == kind and (text is None or token.text == text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        token = self.accept(kind, text)
        if token is None:
            want = text or kind
            raise self.error(f"expected {want!r}, found {self.peek().text!r}")
        return token

    # -- grammar -------------------------------------------------------

    def parse(self) -> Expr:
        expr = self.expr()
        if self.peek().kind != "eof":
            raise self.error(f"unexpected trailing input {self.peek().text!r}")
        return expr

    def expr(self) -> Expr:
        token = self.peek()
        if token.kind == "keyword" and token.text in ("for", "let"):
            return self.flwor()
        if token.kind == "keyword" and token.text == "if":
            return self.if_expr()
        return self.or_expr()

    def flwor(self) -> FLWOR:
        clauses: list[ForClause | LetClause] = []
        while True:
            token = self.peek()
            if token.kind == "keyword" and token.text == "for":
                self.advance()
                while True:
                    var = self.var_name()
                    self.expect("keyword", "in")
                    clauses.append(ForClause(var, self.expr_single()))
                    if not self.accept("symbol", ","):
                        break
            elif token.kind == "keyword" and token.text == "let":
                self.advance()
                while True:
                    var = self.var_name()
                    self.expect("symbol", ":=")
                    clauses.append(LetClause(var, self.expr_single()))
                    if not self.accept("symbol", ","):
                        break
            else:
                break
        where = None
        if self.accept("keyword", "where"):
            where = self.or_expr()
        self.expect("keyword", "return")
        return FLWOR(clauses, where, self.expr())

    def expr_single(self) -> Expr:
        """An expression that must stop before 'return'/'where'/','."""
        token = self.peek()
        if token.kind == "keyword" and token.text in ("for", "let"):
            return self.flwor()
        if token.kind == "keyword" and token.text == "if":
            return self.if_expr()
        return self.or_expr()

    def if_expr(self) -> IfExpr:
        self.expect("keyword", "if")
        self.expect("symbol", "(")
        cond = self.or_expr()
        self.expect("symbol", ")")
        self.expect("keyword", "then")
        then = self.expr_single()
        self.expect("keyword", "else")
        orelse = self.expr_single()
        return IfExpr(cond, then, orelse)

    def var_name(self) -> str:
        self.expect("symbol", "$")
        return self.expect("name").text

    def or_expr(self) -> Expr:
        left = self.and_expr()
        if self.peek().kind == "keyword" and self.peek().text == "or":
            raise self.error("'or' is outside the supported fragment")
        return left

    def and_expr(self) -> Expr:
        parts = [self.comparison()]
        while self.accept("keyword", "and"):
            parts.append(self.comparison())
        if len(parts) == 1:
            return parts[0]
        return AndExpr(parts)

    def comparison(self) -> Expr:
        left = self.path_expr()
        token = self.peek()
        if token.kind == "symbol" and token.text in COMPARISON_OPS:
            self.advance()
            right = self.path_expr()
            return Comparison(token.text, left, right)
        return left

    def path_expr(self) -> Expr:
        token = self.peek()
        if token.kind == "symbol" and token.text in ("/", "//"):
            double = token.text == "//"
            self.advance()
            expr: Expr = PathRoot()
            expr = self.axis_step(expr, double)
        else:
            expr = self.step_primary()
        while True:
            if self.accept("symbol", "/"):
                expr = self.axis_step(expr, double_slash=False)
            elif self.accept("symbol", "//"):
                expr = self.axis_step(expr, double_slash=True)
            else:
                return expr

    def step_primary(self) -> Expr:
        """Either a primary expression or a leading (relative) axis step."""
        token = self.peek()
        if token.kind == "symbol" and token.text == "$":
            self.advance()
            expr: Expr = VarRef(self.expect("name").text)
            return self.with_predicates(expr)
        if token.kind == "string":
            self.advance()
            return StringLiteral(token.text)
        if token.kind == "number":
            self.advance()
            text = token.text
            value = float(text) if "." in text else int(text)
            return NumberLiteral(value)
        if token.kind == "symbol" and token.text == "(":
            self.advance()
            if self.accept("symbol", ")"):
                return EmptySequence()
            items = [self.expr()]
            while self.accept("symbol", ","):
                items.append(self.expr())
            self.expect("symbol", ")")
            if len(items) == 1:
                return self.with_predicates(items[0])
            return SequenceExpr(items)
        if token.kind == "symbol" and token.text == ".":
            self.advance()
            return self.with_predicates(ContextItem())
        if (
            token.kind == "name"
            and token.text in ("doc", "fn:doc")
            and self.peek(1).kind == "symbol"
            and self.peek(1).text == "("
        ):
            self.advance()
            self.advance()
            uris = [self.expect("string").text]
            while self.accept("symbol", ","):
                uris.append(self.expect("string").text)
            self.expect("symbol", ")")
            if len(uris) == 1:
                return self.with_predicates(DocCall(uris[0]))
            # multi-URI doc(): a fixed (glob-free) collection
            return self.with_predicates(CollectionCall(tuple(uris)))
        if (
            token.kind == "name"
            and token.text in ("collection", "fn:collection")
            and self.peek(1).kind == "symbol"
            and self.peek(1).text == "("
        ):
            self.advance()
            self.advance()
            patterns: list[str] = []
            if not self.accept("symbol", ")"):
                patterns.append(self.expect("string").text)
                while self.accept("symbol", ","):
                    patterns.append(self.expect("string").text)
                self.expect("symbol", ")")
            return self.with_predicates(CollectionCall(tuple(patterns)))
        # a relative axis step: child::a, @id, descendant::x, name, ...
        return self.axis_step(ContextItem(), double_slash=False, relative=True)

    def with_predicates(self, expr: Expr) -> Expr:
        """Attach ``[p]`` predicates written directly after a primary."""
        while self.peek().kind == "symbol" and self.peek().text == "[":
            expr = self.wrap_predicate(expr)
        return expr

    def wrap_predicate(self, expr: Expr) -> Expr:
        """A predicate on a non-step expression becomes a self::node()
        step carrying the predicate."""
        step = StepExpr(expr, "self", NodeTest(kind="node"))
        self.predicates(step)
        return step

    def axis_step(self, input_expr: Expr, double_slash: bool, relative: bool = False) -> StepExpr:
        axis, test = self.axis_and_test()
        step = StepExpr(input_expr, axis, test, double_slash=double_slash)
        self.predicates(step)
        return step

    def axis_and_test(self) -> tuple[str, NodeTest]:
        if self.accept("symbol", "@"):
            name = "*" if self.accept("symbol", "*") else self.expect("name").text
            return "attribute", NodeTest(kind="attribute", name=name)
        token = self.peek()
        axis = "child"
        if (
            token.kind == "name"
            and token.text in ALL_AXES
            and self.peek(1).kind == "symbol"
            and self.peek(1).text == "::"
        ):
            axis = token.text
            self.advance()
            self.advance()
        return axis, self.node_test(axis)

    def node_test(self, axis: str) -> NodeTest:
        if self.accept("symbol", "*"):
            return NodeTest(name="*")
        name = self.expect("name").text
        if name in _KIND_TESTS and self.accept("symbol", "("):
            inner: str | None = None
            if not self.accept("symbol", ")"):
                if self.accept("symbol", "*"):
                    inner = "*"
                else:
                    inner = self.expect("name").text
                self.expect("symbol", ")")
            if name in ("element", "attribute"):
                return NodeTest(kind=name, name=inner)
            return NodeTest(kind=name)
        return NodeTest(name=name)

    def predicates(self, step: StepExpr) -> None:
        while self.accept("symbol", "["):
            step.predicates.append(Predicate(self.or_expr()))
            self.expect("symbol", "]")


def parse_xquery(source: str) -> Expr:
    """Parse XQuery source text into the surface AST.

    Raises
    ------
    XQuerySyntaxError
        On lexical or grammatical errors, with the source offset.
    """
    return _Parser(tokenize(source)).parse()
