"""XQuery Core normalization (paper Section 2.3 / [9, §4.2.1, §3.4.3]).

Turns the surface AST into the Core form the loop-lifting compiler
expects:

* every location step is wrapped in ``fs:distinct-doc-order`` (CoreDdo);
* ``//`` desugars to ``descendant-or-self::node()/`` — with the
  standard simplification ``//child::t`` ≡ ``descendant::t``;
* a path predicate ``e[p]`` becomes
  ``for $fresh in e return if (fn:boolean(p)) then $fresh else ()``,
  with the context item inside ``p`` bound to ``$fresh``;
* ``and`` inside predicates / where clauses becomes nested conditionals;
* FLWOR ``where`` becomes a conditional around the return clause;
* multi-variable ``for`` clauses become nested single-variable fors;
* comparisons against literals become ValComp, node/node comparisons
  become Comp.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import XQueryTypeError
from repro.xquery import ast
from repro.xquery.core import (
    CoreCollection,
    CoreComp,
    CoreDdo,
    CoreDoc,
    CoreEmpty,
    CoreExpr,
    CoreFor,
    CoreIf,
    CoreLet,
    CoreStep,
    CoreValComp,
    CoreVar,
)
from repro.xquery.parser import ContextItem

#: resolves ``collection()`` URI globs to the concrete document URIs
#: they match, in global document order (an empty pattern tuple means
#: "every hosted document")
CollectionResolver = Callable[[tuple[str, ...]], tuple[str, ...]]


class _Normalizer:
    def __init__(
        self,
        default_doc: str | None,
        collections: CollectionResolver | None = None,
    ):
        self.default_doc = default_doc
        self.collections = collections
        self.counter = 0
        self.context_stack: list[str] = []

    def fresh(self) -> str:
        self.counter += 1
        return f"#dot{self.counter}"

    # -- expressions ---------------------------------------------------

    def normalize(self, expr: ast.Expr) -> CoreExpr:
        if isinstance(expr, ast.FLWOR):
            return self._flwor(expr)
        if isinstance(expr, ast.IfExpr):
            if not isinstance(expr.orelse, ast.EmptySequence):
                raise XQueryTypeError(
                    "the workhorse fragment requires 'else ()'"
                )
            return self._conditional(expr.cond, expr.then)
        if isinstance(expr, ast.StepExpr):
            return self._step(expr)
        if isinstance(expr, ast.Comparison):
            return self._comparison(expr)
        if isinstance(expr, ast.VarRef):
            return CoreVar(expr.name)
        if isinstance(expr, ast.DocCall):
            return CoreDoc(expr.uri)
        if isinstance(expr, ast.CollectionCall):
            if self.collections is None:
                raise XQueryTypeError(
                    "collection() requires a processor bound to a "
                    "document store (no collection resolver given)"
                )
            return CoreCollection(self.collections(expr.patterns))
        if isinstance(expr, ast.PathRoot):
            if self.default_doc is None:
                raise XQueryTypeError(
                    "absolute path used but no default context document given"
                )
            return CoreDoc(self.default_doc)
        if isinstance(expr, ContextItem):
            if not self.context_stack:
                raise XQueryTypeError(
                    "'.' used outside a predicate context"
                )
            return CoreVar(self.context_stack[-1])
        if isinstance(expr, ast.EmptySequence):
            return CoreEmpty()
        if isinstance(expr, ast.AndExpr):
            raise XQueryTypeError(
                "'and' is only supported in predicates and where clauses"
            )
        if isinstance(expr, (ast.StringLiteral, ast.NumberLiteral)):
            raise XQueryTypeError(
                "literals are only supported as comparison operands"
            )
        if isinstance(expr, ast.SequenceExpr):
            raise XQueryTypeError(
                "sequence construction is only supported as the top-level "
                "return of a tuple query (use XQueryProcessor.compile_tuple)"
            )
        raise XQueryTypeError(f"unsupported expression {type(expr).__name__}")

    def _flwor(self, expr: ast.FLWOR) -> CoreExpr:
        ret: CoreExpr
        if expr.where is not None:
            ret = self._conditional(expr.where, expr.ret)
        else:
            ret = self.normalize(expr.ret)
        for clause in reversed(expr.clauses):
            if isinstance(clause, ast.ForClause):
                ret = CoreFor(clause.var, self.normalize(clause.sequence), ret)
            else:
                ret = CoreLet(clause.var, self.normalize(clause.value), ret)
        return ret

    def _conditional(self, cond: ast.Expr, then: ast.Expr) -> CoreExpr:
        """``if (cond) then then else ()`` with 'and' as nested ifs."""
        body = self.normalize(then)
        return self._guard(cond, body)

    def _guard(self, cond: ast.Expr, body: CoreExpr) -> CoreExpr:
        if isinstance(cond, ast.AndExpr):
            for part in reversed(cond.parts):
                body = self._guard(part, body)
            return body
        return CoreIf(self._boolean(cond), body)

    def _boolean(self, cond: ast.Expr) -> CoreExpr:
        """fn:boolean(cond): comparisons compile to (Val)Comp whose
        result is nonempty exactly when true; node paths test existence."""
        if isinstance(cond, ast.Comparison):
            return self._comparison(cond)
        return self.normalize(cond)

    def _comparison(self, expr: ast.Comparison) -> CoreExpr:
        left_lit = _literal_value(expr.left)
        right_lit = _literal_value(expr.right)
        if left_lit is not None and right_lit is not None:
            raise XQueryTypeError("comparison of two literals is not supported")
        if right_lit is not None:
            return CoreValComp(expr.op, self.normalize(expr.left), right_lit)
        if left_lit is not None:
            from repro.algebra.expressions import MIRRORED

            return CoreValComp(
                MIRRORED[expr.op], self.normalize(expr.right), left_lit
            )
        return CoreComp(
            expr.op, self.normalize(expr.left), self.normalize(expr.right)
        )

    # -- location steps --------------------------------------------------

    def _step(self, expr: ast.StepExpr) -> CoreExpr:
        axis, kind_test, name_test = _resolve_test(expr.axis, expr.test)

        if expr.double_slash:
            if axis == "child":
                # //child::t  ==  descendant::t
                base_input = self.normalize(expr.input)
                core: CoreExpr = CoreDdo(
                    CoreStep(base_input, "descendant", kind_test, name_test)
                )
            else:
                dos = CoreDdo(
                    CoreStep(
                        self.normalize(expr.input),
                        "descendant-or-self",
                        "node",
                        None,
                    )
                )
                core = CoreDdo(CoreStep(dos, axis, kind_test, name_test))
        elif axis == "self" and kind_test == "node" and name_test is None:
            # self::node() introduced for predicates on primaries:
            # identity — no step needed.
            core = self.normalize(expr.input)
        else:
            core = CoreDdo(
                CoreStep(self.normalize(expr.input), axis, kind_test, name_test)
            )

        for predicate in expr.predicates:
            core = self._apply_predicate(core, predicate)
        return core

    def _apply_predicate(self, base: CoreExpr, predicate: ast.Predicate) -> CoreExpr:
        if isinstance(predicate.expr, (ast.NumberLiteral,)):
            raise XQueryTypeError(
                "positional predicates are outside the supported fragment"
            )
        var = self.fresh()
        self.context_stack.append(var)
        try:
            body = self._guard(predicate.expr, CoreVar(var))
        finally:
            self.context_stack.pop()
        return CoreFor(var, base, body)


def _literal_value(expr: ast.Expr) -> str | float | int | None:
    if isinstance(expr, ast.StringLiteral):
        return expr.value
    if isinstance(expr, ast.NumberLiteral):
        return expr.value
    return None


def _resolve_test(axis: str, test: ast.NodeTest) -> tuple[str, str | None, str | None]:
    """Resolve a node test against its axis' principal node kind."""
    kind = test.kind
    name = test.name
    if kind is None:
        # NameTest: principal node kind — attribute on the attribute
        # axis, element everywhere else.
        kind = "attribute" if axis == "attribute" else "element"
    if name == "*":
        name = None
    return axis, kind, name


def normalize(
    expr: ast.Expr,
    default_doc: str | None = None,
    collections: CollectionResolver | None = None,
) -> CoreExpr:
    """Normalize a surface AST into XQuery Core.

    Parameters
    ----------
    expr:
        Parsed surface expression.
    default_doc:
        Document URI that a leading ``/`` resolves to (Table 8 style
        absolute paths); ``None`` forbids absolute paths.
    collections:
        Resolver turning ``collection()`` URI globs into the matching
        document URIs (in global document order); ``None`` forbids
        ``collection()`` and multi-URI ``doc()``.
    """
    return _Normalizer(default_doc, collections).normalize(expr)
