"""Lexical query-text normalization (cache-key canonicalization).

:func:`normalize_query_text` maps query text to a representative that
is identical for all inputs with the same token stream: XQuery
comments ``(: … :)`` (which may nest) are removed, and insignificant
whitespace runs collapse to a single space.  String literals are
preserved verbatim — whitespace inside them is data.

The transformation never merges or splits tokens (comments and
whitespace runs are replaced by *one* space, and the fragment's lexer
never lets a space extend a token), so the normalized text parses to
the identical surface AST.  The compiled-query cache applies it before
the exact-match key, making trivially reformatted queries hit without
any semantic analysis.

On lexically broken input (unterminated comment or string literal) the
text is returned unchanged: such queries fail in the parser anyway,
and the cache key just stays conservative.
"""

from __future__ import annotations

__all__ = ["normalize_query_text"]

_WHITESPACE = " \t\r\n"


def normalize_query_text(query: str) -> str:
    """Strip comments and collapse insignificant whitespace."""
    out: list[str] = []
    i = 0
    n = len(query)

    def space() -> None:
        if out and out[-1] != " ":
            out.append(" ")

    while i < n:
        ch = query[i]
        if ch in _WHITESPACE:
            while i < n and query[i] in _WHITESPACE:
                i += 1
            space()
            continue
        if query.startswith("(:", i):
            depth = 1
            i += 2
            while i < n and depth:
                if query.startswith("(:", i):
                    depth += 1
                    i += 2
                elif query.startswith(":)", i):
                    depth -= 1
                    i += 2
                else:
                    i += 1
            if depth:  # unterminated: leave the broken text alone
                return query
            space()
            continue
        if ch in "\"'":
            end = query.find(ch, i + 1)
            if end < 0:  # unterminated literal
                return query
            out.append(query[i : end + 1])
            i = end + 1
            continue
        out.append(ch)
        i += 1
    return "".join(out).strip()
