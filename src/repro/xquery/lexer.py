"""Tokenizer for the XQuery workhorse fragment."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import XQuerySyntaxError

# multi-character symbols first so maximal munch applies
_SYMBOLS = (
    "//",
    "::",
    ":=",
    "!=",
    "<=",
    ">=",
    "(",
    ")",
    "[",
    "]",
    "/",
    "$",
    "@",
    ",",
    "=",
    "<",
    ">",
    "*",
    ".",
)

KEYWORDS = frozenset(
    (
        "for",
        "let",
        "in",
        "return",
        "if",
        "then",
        "else",
        "where",
        "and",
        "or",
    )
)

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_NAME_CHARS = _NAME_START | set("0123456789-.")


@dataclass
class Token:
    kind: str  # 'name' | 'number' | 'string' | 'symbol' | 'keyword' | 'eof'
    text: str
    pos: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind},{self.text!r})"


def tokenize(source: str) -> list[Token]:
    """Split XQuery source into tokens.

    Names may contain ``-`` and ``.`` (axis names, QNames) and one
    embedded ``:`` for prefixed names such as ``fn:doc`` — but ``::``
    is always the axis separator.
    """
    tokens: list[Token] = []
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch in " \t\r\n":
            i += 1
            continue
        if source.startswith("(:", i):  # XQuery comment, may nest
            depth = 1
            j = i + 2
            while j < n and depth:
                if source.startswith("(:", j):
                    depth += 1
                    j += 2
                elif source.startswith(":)", j):
                    depth -= 1
                    j += 2
                else:
                    j += 1
            if depth:
                raise XQuerySyntaxError("unterminated comment", i)
            i = j
            continue
        if ch in "\"'":
            j = source.find(ch, i + 1)
            if j < 0:
                raise XQuerySyntaxError("unterminated string literal", i)
            tokens.append(Token("string", source[i + 1 : j], i))
            i = j + 1
            continue
        if ch.isdigit():
            j = i + 1
            while j < n and (source[j].isdigit() or source[j] == "."):
                j += 1
            tokens.append(Token("number", source[i:j], i))
            i = j
            continue
        if ch in _NAME_START:
            j = i + 1
            while j < n and source[j] in _NAME_CHARS:
                j += 1
            # allow one ':' for prefixed names (fn:doc) but not '::'
            if j < n and source[j] == ":" and not source.startswith("::", j):
                k = j + 1
                if k < n and source[k] in _NAME_START:
                    while k < n and source[k] in _NAME_CHARS:
                        k += 1
                    j = k
            text = source[i:j]
            kind = "keyword" if text in KEYWORDS else "name"
            tokens.append(Token(kind, text, i))
            i = j
            continue
        for symbol in _SYMBOLS:
            if source.startswith(symbol, i):
                tokens.append(Token("symbol", symbol, i))
                i += len(symbol)
                break
        else:
            raise XQuerySyntaxError(f"unexpected character {ch!r}", i)
    tokens.append(Token("eof", "", n))
    return tokens
