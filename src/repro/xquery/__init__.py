"""XQuery front-end for the paper's "workhorse" fragment (Fig. 1).

The surface syntax accepted by :func:`parse_xquery` is the fragment of
Fig. 1 plus the standard abbreviations XQuery users actually write —
``//``, ``@name``, path predicates ``e[p]``, multi-variable ``for``
clauses and FLWOR ``where`` — all of which are desugared by
:func:`normalize` into the explicit XQuery *Core* form the loop-lifting
compiler consumes (fs:ddo around location steps, fn:boolean around
conditionals, one variable per ``for``).
"""

from repro.xquery.ast import (
    Comparison,
    DocCall,
    EmptySequence,
    Expr,
    FLWOR,
    ForClause,
    IfExpr,
    LetClause,
    NumberLiteral,
    PathRoot,
    Predicate,
    StepExpr,
    StringLiteral,
    VarRef,
)
from repro.xquery.core import (
    CoreComp,
    CoreDdo,
    CoreDoc,
    CoreEmpty,
    CoreExpr,
    CoreFor,
    CoreIf,
    CoreLet,
    CoreStep,
    CoreValComp,
    CoreVar,
    core_to_text,
)
from repro.xquery.parser import parse_xquery
from repro.xquery.normalize import normalize

__all__ = [
    "Comparison",
    "CoreComp",
    "CoreDdo",
    "CoreDoc",
    "CoreEmpty",
    "CoreExpr",
    "CoreFor",
    "CoreIf",
    "CoreLet",
    "CoreStep",
    "CoreValComp",
    "CoreVar",
    "DocCall",
    "EmptySequence",
    "Expr",
    "FLWOR",
    "ForClause",
    "IfExpr",
    "LetClause",
    "NumberLiteral",
    "PathRoot",
    "Predicate",
    "StepExpr",
    "StringLiteral",
    "VarRef",
    "core_to_text",
    "normalize",
    "parse_xquery",
]
