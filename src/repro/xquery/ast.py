"""Surface AST for the XQuery workhorse fragment (paper Fig. 1).

These classes mirror what the parser produces from user-written XQuery,
*before* XQuery Core normalization: paths may still use abbreviations
(``//``, ``@a``), predicates are attached to steps, FLWOR expressions
may bind several variables and carry a ``where`` clause.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: the six general comparison operators of rule [60]
COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")

#: all 12 axes of XQuery's full axis feature
FORWARD_AXES = (
    "child",
    "descendant",
    "descendant-or-self",
    "self",
    "following",
    "following-sibling",
    "attribute",
)
REVERSE_AXES = (
    "parent",
    "ancestor",
    "ancestor-or-self",
    "preceding",
    "preceding-sibling",
)
ALL_AXES = FORWARD_AXES + REVERSE_AXES


class Expr:
    """Base class of surface expressions."""


@dataclass
class StringLiteral(Expr):
    value: str

    def __str__(self) -> str:
        return f'"{self.value}"'


@dataclass
class NumberLiteral(Expr):
    value: float | int

    def __str__(self) -> str:
        return str(self.value)


@dataclass
class VarRef(Expr):
    name: str

    def __str__(self) -> str:
        return f"${self.name}"


@dataclass
class EmptySequence(Expr):
    def __str__(self) -> str:
        return "()"


@dataclass
class DocCall(Expr):
    """``doc("uri")`` / ``fn:doc("uri")``."""

    uri: str

    def __str__(self) -> str:
        return f'doc("{self.uri}")'


@dataclass
class CollectionCall(Expr):
    """``collection(glob, ...)`` / ``fn:collection(...)`` and multi-URI
    ``doc(u1, u2, ...)``: the DOC nodes of every matching document, in
    global document order.  ``patterns`` holds shell-style URI globs
    (``fnmatch`` syntax); an empty tuple selects every hosted document.
    Patterns resolve to concrete URIs during normalization, against the
    processor's store (or sharded collection)."""

    patterns: tuple[str, ...]

    def __str__(self) -> str:
        args = ", ".join(f'"{p}"' for p in self.patterns)
        return f"collection({args})"


@dataclass
class PathRoot(Expr):
    """A leading ``/`` — the root of the context document.

    Resolved during normalization against the processor's default
    context document (queries like ``/site/people/...`` of Table 8).
    """

    def __str__(self) -> str:
        return "(/)"


@dataclass
class NodeTest:
    """An XPath node test: kind test and/or name test.

    ``kind`` is one of ``element``, ``attribute``, ``text``, ``comment``,
    ``processing-instruction``, ``document-node``, ``node`` or ``None``
    (meaning: principal node kind of the axis); ``name`` is a QName,
    ``"*"`` or ``None``.
    """

    kind: str | None = None
    name: str | None = None

    def __str__(self) -> str:
        if self.kind is None:
            return self.name or "*"
        if self.name and self.kind in ("element", "attribute"):
            return f"{self.kind}({self.name})"
        return f"{self.kind}()"


@dataclass
class Predicate:
    """A path predicate ``[p]``; ``expr`` is a boolean-ish expression."""

    expr: Expr

    def __str__(self) -> str:
        return f"[{self.expr}]"


@dataclass
class StepExpr(Expr):
    """One location step applied to an input expression.

    ``double_slash`` records that the step was written with ``//`` and
    still needs the descendant-or-self desugaring.
    """

    input: Expr
    axis: str
    test: NodeTest
    predicates: list[Predicate] = field(default_factory=list)
    double_slash: bool = False

    def __str__(self) -> str:
        sep = "//" if self.double_slash else "/"
        preds = "".join(str(p) for p in self.predicates)
        return f"{self.input}{sep}{self.axis}::{self.test}{preds}"


@dataclass
class Comparison(Expr):
    """General comparison ``e1 op e2`` (rule [60])."""

    op: str
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass
class AndExpr(Expr):
    """Conjunction — only allowed inside predicates / where clauses,
    where it desugars to nested conditionals."""

    parts: list[Expr]

    def __str__(self) -> str:
        return " and ".join(str(p) for p in self.parts)


@dataclass
class ForClause:
    var: str
    sequence: Expr

    def __str__(self) -> str:
        return f"for ${self.var} in {self.sequence}"


@dataclass
class LetClause:
    var: str
    value: Expr

    def __str__(self) -> str:
        return f"let ${self.var} := {self.value}"


@dataclass
class FLWOR(Expr):
    """A FLWOR expression: one or more for/let clauses, an optional
    where clause, and the return expression."""

    clauses: list[ForClause | LetClause]
    where: Expr | None
    ret: Expr

    def __str__(self) -> str:
        text = " ".join(str(c) for c in self.clauses)
        if self.where is not None:
            text += f" where {self.where}"
        return f"{text} return {self.ret}"


@dataclass
class IfExpr(Expr):
    """``if (cond) then e1 else e2`` — the fragment requires e2 = ()."""

    cond: Expr
    then: Expr
    orelse: Expr

    def __str__(self) -> str:
        return f"if ({self.cond}) then {self.then} else {self.orelse}"


@dataclass
class SequenceExpr(Expr):
    """Comma sequence ``(e1, e2, ...)`` — accepted by the parser so the
    Table 8 Q6 tuple query can be expressed; each item must be a node
    path and the sequence appears only in a return clause."""

    items: list[Expr]

    def __str__(self) -> str:
        return "(" + ", ".join(str(i) for i in self.items) + ")"
