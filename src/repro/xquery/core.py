"""XQuery *Core* AST — the normalized form the compiler consumes.

After normalization (``fs:ddo`` around every location step, effective
boolean values in conditionals, one variable per ``for``, predicates
desugared to ``for``/``if``), queries are built from exactly the
constructs the inference rules of paper Fig. 13 handle:

.. code-block:: text

    e ::= for $v in e return e   | let $v := e return e | $v
        | if (fn:boolean(e)) then e else ()
        | fs:ddo(e/axis::test)   | doc(uri) | collection(uri, ...)
        | e cmp literal          | e cmp e
"""

from __future__ import annotations

from dataclasses import dataclass


class CoreExpr:
    """Base class of Core expressions."""


@dataclass
class CoreFor(CoreExpr):
    var: str
    sequence: CoreExpr
    ret: CoreExpr


@dataclass
class CoreLet(CoreExpr):
    var: str
    value: CoreExpr
    ret: CoreExpr


@dataclass
class CoreVar(CoreExpr):
    name: str


@dataclass
class CoreIf(CoreExpr):
    """``if (fn:boolean(cond)) then then_branch else ()``."""

    cond: CoreExpr
    then: CoreExpr


@dataclass
class CoreDdo(CoreExpr):
    """``fs:distinct-doc-order(expr)``."""

    expr: CoreExpr


@dataclass
class CoreStep(CoreExpr):
    """One XPath location step ``input/axis::test`` (no predicates —
    those were desugared into for/if)."""

    input: CoreExpr
    axis: str
    kind_test: str | None  # element/attribute/text/.../node or None
    name_test: str | None  # QName, '*' or None


@dataclass
class CoreDoc(CoreExpr):
    uri: str


@dataclass
class CoreCollection(CoreExpr):
    """``fn:collection(...)`` with its URI globs already resolved: the
    DOC nodes of exactly these documents, in global document order.
    An empty tuple means the collection matched nothing and the
    expression is equivalent to ``()``."""

    uris: tuple[str, ...]


@dataclass
class CoreValComp(CoreExpr):
    """General comparison of a node sequence against a literal
    (rule ValComp).  ``value`` being numeric selects the typed
    ``data`` column; a string compares the untyped ``value`` column."""

    op: str
    expr: CoreExpr
    value: str | float | int


@dataclass
class CoreComp(CoreExpr):
    """General comparison between two node sequences (rule Comp)."""

    op: str
    left: CoreExpr
    right: CoreExpr


@dataclass
class CoreEmpty(CoreExpr):
    """The empty sequence ``()``."""


def core_to_text(expr: CoreExpr, depth: int = 0) -> str:
    """Pretty-print a Core expression (used in tests and docs)."""
    pad = "  " * depth
    if isinstance(expr, CoreFor):
        return (
            f"{pad}for ${expr.var} in\n{core_to_text(expr.sequence, depth + 1)}\n"
            f"{pad}return\n{core_to_text(expr.ret, depth + 1)}"
        )
    if isinstance(expr, CoreLet):
        return (
            f"{pad}let ${expr.var} :=\n{core_to_text(expr.value, depth + 1)}\n"
            f"{pad}return\n{core_to_text(expr.ret, depth + 1)}"
        )
    if isinstance(expr, CoreVar):
        return f"{pad}${expr.name}"
    if isinstance(expr, CoreIf):
        return (
            f"{pad}if fn:boolean(\n{core_to_text(expr.cond, depth + 1)}\n"
            f"{pad}) then\n{core_to_text(expr.then, depth + 1)}\n{pad}else ()"
        )
    if isinstance(expr, CoreDdo):
        return f"{pad}fs:ddo(\n{core_to_text(expr.expr, depth + 1)}\n{pad})"
    if isinstance(expr, CoreStep):
        test = expr.name_test or ""
        if expr.kind_test and expr.kind_test not in ("element",):
            test = f"{expr.kind_test}({expr.name_test or ''})"
        return (
            f"{pad}step {expr.axis}::{test or '*'} of\n"
            f"{core_to_text(expr.input, depth + 1)}"
        )
    if isinstance(expr, CoreDoc):
        return f'{pad}doc("{expr.uri}")'
    if isinstance(expr, CoreCollection):
        uris = ", ".join(f'"{u}"' for u in expr.uris)
        return f"{pad}collection({uris})"
    if isinstance(expr, CoreValComp):
        return (
            f"{pad}(valcomp {expr.op} {expr.value!r})\n"
            f"{core_to_text(expr.expr, depth + 1)}"
        )
    if isinstance(expr, CoreComp):
        return (
            f"{pad}(comp {expr.op})\n{core_to_text(expr.left, depth + 1)}\n"
            f"{core_to_text(expr.right, depth + 1)}"
        )
    if isinstance(expr, CoreEmpty):
        return f"{pad}()"
    raise TypeError(f"unknown Core node {type(expr).__name__}")
