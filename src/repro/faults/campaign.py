"""The randomized differential chaos campaign.

This is the proof behind ``docs/robustness.md``: hammer the
:class:`repro.service.QueryService` from many threads while the fault
injector (:mod:`repro.faults.injector`) delivers backend misbehavior at
a configured error rate, and hold the service to its contract:

* every call returns either a **correct** answer (bit-identical to an
  uncached oracle computed on the reference interpreter before the
  storm) or a **clean typed error** (:class:`repro.errors.ServiceError`
  subclass) — never a wrong, partial, or stale result, and never an
  untyped crash;
* every injected fault is **accounted for**: the injector's tally must
  equal the service's recovery ledger,
  ``injected == retried + degraded + surfaced``.

The campaign is reproducible from its config: the injector draws from
``seed``, and each worker thread's query order is derived from
``seed + thread index``.  ``repro serve-bench --faults`` runs exactly
this campaign from the command line and prints/saves the report (CI
uploads it as the chaos seed artifact).

**Sharded mode** (``shards > 1``): the storm targets a
:class:`repro.service.ShardedService` over a multi-document XMark
corpus with scatter-safe ``collection()`` queries, so injected faults
land *inside* the scatter fan-out — a failing shard triggers the
service's full-serial fallback, never a partial merge.  The contract
is unchanged: answers stay bit-identical to the pre-storm oracle (a
bare interpreter over the combined store) and the recovery ledger
balances across every shard service plus the serial fallback.

The storm service carries a full-size **flight recorder** (every call
retained, promotion by degradation/surfacing only), so the report
separates latency percentiles for *clean* calls, *degraded* calls
(served correct answers through the fallback path) and *surfaced*
errors — the degraded-tail cost of resilience — and verifies that the
slow-query log captured full diagnostics for every degraded and
surfaced call.  The report schema is ``repro.faults.campaign/v3``
(adds ``latency`` and ``slow_log``, see ``docs/schemas.md``).
"""

from __future__ import annotations

import threading
from dataclasses import asdict, dataclass, field
from random import Random
from typing import Any

from repro.errors import ServiceError
from repro.faults.injector import FaultInjector, FaultPlan, injection
from repro.infoset.encoding import DocumentStore
from repro.obs import (
    Histogram,
    MetricsRegistry,
    latency_summary_ms,
    set_metrics,
)
from repro.obs.flight import FlightRecorder
from repro.pipeline import XQueryProcessor
from repro.service.resilience import RetryPolicy
from repro.service.service import QueryService
from repro.workloads import XMARK_QUERIES, XMarkConfig, generate_xmark

__all__ = ["ChaosConfig", "format_chaos_report", "run_chaos_campaign"]

SCHEMA = "repro.faults.campaign/v3"

#: service-level typed errors a chaos run is allowed to surface
_ALLOWED_ERRORS = ServiceError


@dataclass(frozen=True)
class ChaosConfig:
    """Everything needed to reproduce one campaign run."""

    seed: int = 0
    threads: int = 8
    queries_per_thread: int = 25
    rate: float = 0.12
    factor: float = 0.002
    deadline_s: float = 2.0
    #: stalls are sized to always overrun the deadline, so every stall
    #: has a deterministic disposition (surfaced as DeadlineExceeded);
    #: a stall that fit the budget would count as absorbed, not
    #: injected, so the accounting gate holds either way
    stall_ms: float = 4_000.0
    max_retries: int = 3
    breaker_threshold: int = 6
    breaker_reset_s: float = 0.05
    query_mix: tuple[str, ...] = ("X1", "X5", "X13", "X17", "X19")
    engines: tuple[str, ...] = ("joingraph-sql", "stacked-sql")
    #: shards > 1 switches the campaign to sharded mode: the storm
    #: targets a ShardedService over a ``documents``-document corpus
    #: with the scatter-safe collection query mix
    shards: int = 1
    documents: int = 4
    collection_query_mix: tuple[str, ...] = ("CX1", "CX2", "CX3", "CX4")
    #: shard execution mode for sharded-mode storms: ``"process"``
    #: storms the ProcessShardExecutor, so injected faults cross the
    #: pipe and the ledger must balance across process boundaries
    #: (ignored in single mode, which has no shard executor)
    executor: str = "thread"

    def plan(self) -> FaultPlan:
        return FaultPlan.uniform(
            self.rate, seed=self.seed, stall_ms=self.stall_ms
        )

    @property
    def calls(self) -> int:
        return self.threads * self.queries_per_thread

    def recorder(self) -> FlightRecorder:
        """A storm-sized flight recorder: every call retained (no ring
        eviction over the campaign), promotion by degradation or
        surfacing only — the latency threshold is parked effectively
        at infinity (but finite: the snapshot must stay JSON-clean)."""
        return FlightRecorder(
            capacity=self.calls,
            slow_capacity=self.calls,
            slow_threshold_s=1e9,
        )


@dataclass
class _Outcomes:
    """Thread-safe tally of per-call outcomes."""

    lock: threading.Lock = field(default_factory=threading.Lock)
    ok: int = 0
    typed_errors: dict[str, int] = field(default_factory=dict)
    wrong: list[str] = field(default_factory=list)
    crashes: list[str] = field(default_factory=list)

    def record_ok(self) -> None:
        with self.lock:
            self.ok += 1

    def record_error(self, error: BaseException) -> None:
        name = type(error).__name__
        with self.lock:
            self.typed_errors[name] = self.typed_errors.get(name, 0) + 1

    def record_wrong(self, detail: str) -> None:
        with self.lock:
            self.wrong.append(detail)

    def record_crash(self, detail: str) -> None:
        with self.lock:
            self.crashes.append(detail)


def _single_target(config: ChaosConfig):
    """The classic storm target: one QueryService over one document."""
    store = DocumentStore()
    store.load_tree(generate_xmark(XMarkConfig(factor=config.factor)))
    texts = {name: XMARK_QUERIES[name].text for name in config.query_mix}

    # the uncached oracle: a bare processor on the reference
    # interpreter, computed before any fault is ever injected
    oracle_processor = XQueryProcessor(store=store, default_doc="auction.xml")
    oracle = {
        name: oracle_processor.execute(text, engine="interpreter")
        for name, text in texts.items()
    }

    service = QueryService(
        store=store,
        default_doc="auction.xml",
        workers=config.threads,
        deadline_s=config.deadline_s,
        retry=RetryPolicy(max_retries=config.max_retries),
        breaker_threshold=config.breaker_threshold,
        breaker_reset_s=config.breaker_reset_s,
        degrade=True,
        flight_recorder=config.recorder(),
    )
    return service, texts, oracle


def _sharded_target(config: ChaosConfig):
    """Sharded-mode storm target: a ShardedService over a multi-
    document corpus, queried through scatter-safe ``collection()``
    shapes so faults strike mid-fan-out."""
    from repro.bench.collection import DEFAULT_COLLECTION_QUERIES
    from repro.service.scatter import ShardedService
    from repro.store import Collection
    from repro.workloads.corpus import CorpusConfig, xmark_corpus

    collection = Collection(config.shards)
    corpus = xmark_corpus(
        CorpusConfig(documents=config.documents, factor=config.factor)
    )
    for index, tree in enumerate(corpus):
        collection.load_tree(tree, shard=index % config.shards)
    texts = {
        name: DEFAULT_COLLECTION_QUERIES[name]
        for name in config.collection_query_mix
    }

    oracle_processor = XQueryProcessor(
        store=collection.combined_store(),
        default_doc=corpus[0].uri,
        collections=collection.resolve,
    )
    oracle = {
        name: oracle_processor.execute(text, engine="interpreter")
        for name, text in texts.items()
    }

    service = ShardedService(
        collection,
        default_doc=corpus[0].uri,
        deadline_s=config.deadline_s,
        retry=RetryPolicy(max_retries=config.max_retries),
        breaker_threshold=config.breaker_threshold,
        breaker_reset_s=config.breaker_reset_s,
        degrade=True,
        executor=config.executor,
        flight_recorder=config.recorder(),
    )
    return service, texts, oracle


def run_chaos_campaign(config: ChaosConfig = ChaosConfig()) -> dict[str, Any]:
    """Run one full campaign; returns the JSON-ready report.

    The report's ``contract`` section is the acceptance gate: it must
    show zero wrong results, zero crashes, and balanced accounting.
    """
    if config.shards > 1:
        service, texts, oracle = _sharded_target(config)
    else:
        service, texts, oracle = _single_target(config)
    outcomes = _Outcomes()
    campaign_metrics = MetricsRegistry()
    merge_lock = threading.Lock()
    barrier = threading.Barrier(config.threads)
    names = sorted(texts)

    def worker(index: int) -> None:
        rng = Random(config.seed + index)
        local = MetricsRegistry()
        previous = set_metrics(local)
        try:
            barrier.wait()
            for _ in range(config.queries_per_thread):
                name = rng.choice(names)
                engine = rng.choice(config.engines)
                try:
                    items = service.execute(texts[name], engine=engine)
                except _ALLOWED_ERRORS as error:
                    outcomes.record_error(error)
                except Exception as error:  # noqa: BLE001 - the contract
                    outcomes.record_crash(
                        f"{name}/{engine}: {type(error).__name__}: {error}"
                    )
                else:
                    if items == oracle[name]:
                        outcomes.record_ok()
                    else:
                        outcomes.record_wrong(f"{name}/{engine}")
        finally:
            set_metrics(previous)
            with merge_lock:
                campaign_metrics.merge(local)

    injector = FaultInjector(config.plan())
    try:
        with injection(injector):
            threads = [
                threading.Thread(target=worker, args=(n,), name=f"chaos-{n}")
                for n in range(config.threads)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
    finally:
        service.close()

    handled = service.fault_accounting
    injected = injector.counts.total
    accounted = sum(handled.values())
    calls = config.calls
    counters = campaign_metrics.snapshot()["counters"]
    latency, slow_log = _flight_analysis(service.flight)
    return {
        "schema": SCHEMA,
        "mode": "sharded" if config.shards > 1 else "single",
        "config": asdict(config),
        "calls": calls,
        "outcomes": {
            "ok": outcomes.ok,
            "typed_errors": dict(sorted(outcomes.typed_errors.items())),
            "wrong": list(outcomes.wrong),
            "crashes": list(outcomes.crashes),
        },
        "faults": {
            "injected": injector.counts.snapshot(),
            "absorbed": injector.counts.absorbed_snapshot(),
            "injected_total": injected,
            "handled": handled,
            "handled_total": accounted,
        },
        "contract": {
            "no_wrong_results": not outcomes.wrong,
            "no_crashes": not outcomes.crashes,
            "accounting_balanced": injected == accounted,
            "holds": (
                not outcomes.wrong
                and not outcomes.crashes
                and injected == accounted
            ),
        },
        "latency": latency,
        "slow_log": slow_log,
        "counters": {
            name: value
            for name, value in counters.items()
            if name.startswith(("service.", "faults."))
        },
    }


def _flight_analysis(
    recorder: FlightRecorder | None,
) -> tuple[dict[str, Any], dict[str, Any]]:
    """Classify the storm's flight records into clean / degraded /
    surfaced latency populations, and check the slow-query log
    captured full diagnostics for every degraded and surfaced call."""
    if recorder is None:  # pragma: no cover - campaign always records
        return {}, {}
    populations = {
        "clean": Histogram(),
        "degraded": Histogram(),
        "surfaced": Histogram(),
    }
    expected: set[int] = set()
    for record in recorder.records():
        if record.surfaced:
            populations["surfaced"].observe(record.elapsed_ns)
            expected.add(record.seq)
        elif record.degraded:
            populations["degraded"].observe(record.elapsed_ns)
            expected.add(record.seq)
        else:
            populations["clean"].observe(record.elapsed_ns)
    captures = recorder.slow()
    captured = {capture.record.seq for capture in captures}
    with_diagnostics = sum(
        1 for capture in captures if capture.explain and capture.trace
    )
    latency = {
        name: latency_summary_ms(histogram)
        for name, histogram in populations.items()
    }
    slow_log = {
        "expected": len(expected),
        "captured": len(captured & expected),
        "with_diagnostics": with_diagnostics,
        "complete": expected <= captured,
    }
    return latency, slow_log


def format_chaos_report(report: dict[str, Any]) -> str:
    """Human-readable rendering of a campaign report."""
    config = report["config"]
    outcomes = report["outcomes"]
    faults = report["faults"]
    contract = report["contract"]
    lines = [
        f"chaos campaign — seed {config['seed']}, {config['threads']} threads "
        f"x {config['queries_per_thread']} queries, "
        f"{config['rate']:.0%} fault rate (xmark factor {config['factor']})",
    ]
    if report.get("mode") == "sharded":
        lines.append(
            f"  sharded mode      : {config['shards']} shards, "
            f"{config['documents']}-document collection() storm, "
            f"{config.get('executor', 'thread')} executor"
        )
    lines += [
        f"  calls             : {report['calls']}",
        f"  correct answers   : {outcomes['ok']}",
        "  typed errors      : "
        + (
            ", ".join(
                f"{name} x{count}"
                for name, count in outcomes["typed_errors"].items()
            )
            or "none"
        ),
        f"  wrong results     : {len(outcomes['wrong'])}",
        f"  crashes           : {len(outcomes['crashes'])}",
        "  injected          : "
        + ", ".join(
            f"{kind} x{count}"
            for kind, count in faults["injected"].items()
            if count
        )
        + f" (total {faults['injected_total']})",
        f"  handled           : retry {faults['handled']['retry']}, "
        f"degrade {faults['handled']['degrade']}, "
        f"surface {faults['handled']['surface']} "
        f"(total {faults['handled_total']})",
        f"  contract          : "
        f"{'HOLDS' if contract['holds'] else 'VIOLATED'} "
        f"(wrong={not contract['no_wrong_results']}, "
        f"crashes={not contract['no_crashes']}, "
        f"accounting={'balanced' if contract['accounting_balanced'] else 'UNBALANCED'})",
    ]
    latency = report.get("latency") or {}
    for population in ("clean", "degraded", "surfaced"):
        summary = latency.get(population)
        if not summary or not summary["count"]:
            continue
        lines.append(
            f"  {population + ' latency':<18}: "
            f"p50 {summary['p50']:.2f} / p95 {summary['p95']:.2f} / "
            f"p99 {summary['p99']:.2f} ms over {summary['count']} call(s)"
        )
    slow_log = report.get("slow_log")
    if slow_log:
        lines.append(
            f"  slow-query log    : {slow_log['captured']}/"
            f"{slow_log['expected']} degraded+surfaced calls captured "
            f"({slow_log['with_diagnostics']} with explain+trace) — "
            f"{'complete' if slow_log['complete'] else 'INCOMPLETE'}"
        )
    return "\n".join(lines)
