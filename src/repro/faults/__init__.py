"""Fault injection and chaos testing for the serving stack.

``repro.faults`` is how this repository *proves* the robustness story:
:mod:`repro.faults.injector` delivers deterministic, seedable backend
misbehavior (busy errors, slow-query stalls, connection death,
retirement races) at hooks threaded through
:mod:`repro.sql.backend` and :mod:`repro.service.pool`, and
:mod:`repro.faults.campaign` runs the randomized differential chaos
campaign that holds the service to its contract under that
misbehavior: every query returns a correct answer or a clean typed
error — never wrong, never stale — and every injected fault is
accounted for as retried, degraded, or surfaced.

``repro.faults.campaign`` is intentionally *not* imported here: it
pulls in the service layer, which itself (via the SQL backend) imports
this package — import it explicitly where needed.

See ``docs/robustness.md`` for the failure model and reproduction
workflow.
"""

from repro.faults.injector import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    InjectedOperationalError,
    active,
    injection,
    install,
    is_injected,
    on_execute,
    on_lease,
    suppressed,
    uninstall,
)

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "InjectedOperationalError",
    "active",
    "injection",
    "install",
    "is_injected",
    "on_execute",
    "on_lease",
    "suppressed",
    "uninstall",
]
