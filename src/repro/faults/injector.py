"""Deterministic, seedable fault injection for the serving stack.

The injector simulates the ways an off-the-shelf RDBMS misbehaves
under production load, at the two seams the service depends on:

``sql.execute`` (hooked in :meth:`repro.sql.backend.SQLiteBackend._execute_timed`)
    ``busy``        a transient ``sqlite3.OperationalError`` ("database
                    is locked"), the classic contended-backend failure;
    ``stall``       a slow-query stall: the statement hangs for
                    ``stall_ms`` before running — deadline-aware, so a
                    governed query observes :class:`DeadlineExceeded`
                    promptly instead of after the full stall.  A stall
                    enters the injected tally only when it converts
                    into a :class:`DeadlineExceeded`; a stall the query
                    absorbs (no active deadline, or it fit the
                    remaining budget) produces no failure and therefore
                    no disposition, so it is tallied separately
                    (``faults.absorbed.stall``) and stays out of the
                    accounting ledger;
    ``disconnect``  connection death: the thread's connection is
                    *actually closed* and the statement fails — the
                    next use of that connection fails too, exactly like
                    a dropped server socket.

``pool.lease`` (hooked in :meth:`repro.service.pool.BackendPool.lease`)
    ``retire``      a retirement race: the pool is retired *while* a
                    caller is acquiring a lease, as a concurrent
                    document reload would do, and the lease fails with
                    :class:`PoolRetiredError`.

Determinism: one seeded :class:`random.Random` drives all draws (under
a lock — the fault *sequence* is reproducible from the seed; which
thread observes each fault depends on scheduling, which is why the
chaos campaign asserts invariants rather than exact schedules).  For
exact unit tests, :meth:`FaultInjector.scripted` replays an explicit
fault sequence instead of drawing randomly.

Every injected exception carries ``injected = True`` so the service's
recovery accounting can distinguish injected faults from organic ones
— the chaos gate asserts ``injected == retried + degraded + surfaced``
(see ``docs/robustness.md``).

Installation is process-global (:func:`install` / :func:`uninstall` /
the :func:`injection` context manager) with a thread-local
:func:`suppressed` guard: the service's *degraded* path runs suppressed
so the fallback of last resort is not itself chaos-tested mid-recovery.
When nothing is installed the hooks are a single ``is None`` check.
"""

from __future__ import annotations

import random
import sqlite3
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from repro.errors import DeadlineExceeded, PoolRetiredError
from repro.obs import get_metrics

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids the
    from repro.service.pool import BackendPool  # backend->faults->pool cycle

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "InjectedOperationalError",
    "injection",
    "install",
    "is_injected",
    "on_execute",
    "on_lease",
    "suppressed",
    "uninstall",
]

FAULT_KINDS = ("busy", "stall", "disconnect", "retire")

#: stall sleep granularity — the injected stall wakes this often to
#: honor the thread's active deadline
_STALL_SLICE_S = 0.005


class InjectedOperationalError(sqlite3.OperationalError):
    """An injected backend failure; indistinguishable from the real
    thing for classification purposes but marked for accounting."""

    injected = True


def is_injected(error: BaseException) -> bool:
    """Was ``error`` produced (directly or by translation) by the
    installed fault injector?"""
    return bool(getattr(error, "injected", False))


@dataclass(frozen=True)
class FaultPlan:
    """Per-kind injection probabilities (independent draws per site).

    Rates are probabilities per *opportunity*: each executed statement
    is one ``busy``/``stall``/``disconnect`` opportunity, each pool
    lease one ``retire`` opportunity.
    """

    seed: int = 0
    busy: float = 0.0
    stall: float = 0.0
    disconnect: float = 0.0
    retire: float = 0.0
    stall_ms: float = 50.0

    @classmethod
    def uniform(
        cls, rate: float, seed: int = 0, stall_ms: float = 50.0
    ) -> "FaultPlan":
        """An overall error ``rate`` split across the fault kinds the
        way production incidents skew: mostly contention, some
        connection loss, some pool churn, a few stalls."""
        return cls(
            seed=seed,
            busy=rate * 0.5,
            stall=rate * 0.1,
            disconnect=rate * 0.2,
            retire=rate * 0.2,
            stall_ms=stall_ms,
        )

    def validate(self) -> None:
        for kind in FAULT_KINDS:
            value = getattr(self, kind)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"fault rate {kind}={value} outside [0, 1]")
        if self.stall_ms < 0:
            raise ValueError("stall_ms must be >= 0")


@dataclass
class FaultCounts:
    """Thread-safe per-kind injection tally.

    ``by_kind`` counts faults *delivered* as an observable failure —
    exactly the population the chaos ledger must balance against
    (``injected == retried + degraded + surfaced``).  ``absorbed``
    counts opportunities that fired but produced no failure (a stall
    with no active deadline, or one that fit the remaining budget):
    they have no disposition, so they are kept out of ``by_kind`` and
    out of :attr:`total`.
    """

    _lock: threading.Lock = field(default_factory=threading.Lock)
    by_kind: dict[str, int] = field(
        default_factory=lambda: dict.fromkeys(FAULT_KINDS, 0)
    )
    absorbed: dict[str, int] = field(
        default_factory=lambda: dict.fromkeys(FAULT_KINDS, 0)
    )

    def record(self, kind: str) -> None:
        with self._lock:
            self.by_kind[kind] += 1
        get_metrics().count(f"faults.injected.{kind}")

    def record_absorbed(self, kind: str) -> None:
        with self._lock:
            self.absorbed[kind] += 1
        get_metrics().count(f"faults.absorbed.{kind}")

    def absorb(
        self, by_kind: dict[str, int], absorbed: dict[str, int]
    ) -> None:
        """Fold a worker process's injection tally into this ledger.

        No metric side effects: the worker already counted its
        ``faults.injected.*`` / ``faults.absorbed.*`` into its own
        registry, which merges separately — double counting here would
        break metrics/ledger agreement.
        """
        with self._lock:
            for kind, count in by_kind.items():
                self.by_kind[kind] = self.by_kind.get(kind, 0) + count
            for kind, count in absorbed.items():
                self.absorbed[kind] = self.absorbed.get(kind, 0) + count

    @property
    def total(self) -> int:
        with self._lock:
            return sum(self.by_kind.values())

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self.by_kind)

    def absorbed_snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self.absorbed)


class FaultInjector:
    """Draws faults from a :class:`FaultPlan` (or replays a script) and
    delivers them at the hook sites."""

    def __init__(self, plan: FaultPlan | None = None):
        self.plan = plan if plan is not None else FaultPlan()
        self.plan.validate()
        self.counts = FaultCounts()
        self._rng = random.Random(self.plan.seed)
        self._rng_lock = threading.Lock()
        self._script: list[str | None] | None = None
        self._script_index = 0

    @classmethod
    def scripted(
        cls, kinds: Iterable[str | None], stall_ms: float = 50.0
    ) -> "FaultInjector":
        """An injector that replays ``kinds`` verbatim, one entry per
        opportunity (``None`` = no fault), then stops injecting.  For
        deterministic unit tests."""
        injector = cls(FaultPlan(stall_ms=stall_ms))
        script = list(kinds)
        for kind in script:
            if kind is not None and kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}")
        injector._script = script
        return injector

    # -- decision -------------------------------------------------------

    def _next_scripted(self, site_kinds: Sequence[str]) -> str | None:
        assert self._script is not None
        with self._rng_lock:
            if self._script_index >= len(self._script):
                return None
            kind = self._script[self._script_index]
            self._script_index += 1
        if kind is not None and kind not in site_kinds:
            return None
        return kind

    def _draw(self, site_kinds: Sequence[str]) -> str | None:
        if self._script is not None:
            return self._next_scripted(site_kinds)
        with self._rng_lock:
            roll = self._rng.random()
        threshold = 0.0
        for kind in site_kinds:
            threshold += getattr(self.plan, kind)
            if roll < threshold:
                return kind
        return None

    # -- delivery -------------------------------------------------------

    def fire_execute(self, connection: sqlite3.Connection) -> None:
        """Statement-execution site: may raise, stall, or kill the
        connection."""
        kind = self._draw(("busy", "stall", "disconnect"))
        if kind is None:
            return
        if kind == "stall":
            # _stall does its own accounting: the stall counts as
            # injected only when it converts into a DeadlineExceeded
            self._stall()
            return
        self.counts.record(kind)
        if kind == "busy":
            raise InjectedOperationalError(
                "database is locked [injected busy]"
            )
        connection.close()
        raise InjectedOperationalError(
            "connection died [injected disconnect]"
        )

    def fire_lease(self, pool: "BackendPool") -> None:
        """Pool-lease site: may retire the pool mid-acquisition."""
        kind = self._draw(("retire",))
        if kind is None:
            return
        self.counts.record(kind)
        pool.retire()
        error = PoolRetiredError(
            f"backend pool {pool.name} retired [injected retirement race]"
        )
        error.injected = True  # type: ignore[attr-defined]
        raise error

    def _stall(self) -> None:
        """Sleep ``stall_ms``, waking every slice to honor the active
        deadline — a governed query sees :class:`DeadlineExceeded`
        promptly, an ungoverned one simply runs slow.

        Only a stall that actually raises counts as injected; a stall
        that runs to completion caused no failure for the service to
        handle and is tallied as absorbed instead, keeping the chaos
        ledger balanced for services without deadlines."""
        # lazy import: repro.sql.backend imports this module at load
        # time, and repro.service.resilience sits behind the
        # repro.service package __init__ — resolving it here (runtime,
        # everything loaded) avoids the import cycle
        from repro.service.resilience import current_deadline

        remaining = self.plan.stall_ms / 1000.0
        deadline = current_deadline()
        try:
            while remaining > 0:
                if deadline is not None:
                    deadline.check(injected=True)
                step = min(_STALL_SLICE_S, remaining)
                time.sleep(step)
                remaining -= step
            if deadline is not None:
                deadline.check(injected=True)
        except DeadlineExceeded:
            self.counts.record("stall")
            raise
        self.counts.record_absorbed("stall")

    def snapshot(self) -> dict[str, object]:
        """JSON-ready report: the plan and what was actually injected."""
        return {
            "seed": self.plan.seed,
            "rates": {kind: getattr(self.plan, kind) for kind in FAULT_KINDS},
            "stall_ms": self.plan.stall_ms,
            "injected": self.counts.snapshot(),
            "absorbed": self.counts.absorbed_snapshot(),
            "total": self.counts.total,
        }


# -- process-global installation ------------------------------------------

_active: FaultInjector | None = None
_install_lock = threading.Lock()
_suppression = threading.local()


def install(injector: FaultInjector) -> FaultInjector:
    """Make ``injector`` the process-wide active injector."""
    global _active
    with _install_lock:
        if _active is not None:
            raise RuntimeError("a fault injector is already installed")
        _active = injector
    return injector


def uninstall() -> None:
    global _active
    with _install_lock:
        _active = None


def active() -> FaultInjector | None:
    return _active


@contextmanager
def injection(plan_or_injector: FaultPlan | FaultInjector) -> Iterator[FaultInjector]:
    """Install an injector for the duration of the block."""
    injector = (
        plan_or_injector
        if isinstance(plan_or_injector, FaultInjector)
        else FaultInjector(plan_or_injector)
    )
    install(injector)
    try:
        yield injector
    finally:
        uninstall()


@contextmanager
def suppressed() -> Iterator[None]:
    """Disable injection on this thread for the duration — used by the
    service's degraded path so the fallback of last resort is not
    itself fault-injected."""
    depth = getattr(_suppression, "depth", 0)
    _suppression.depth = depth + 1
    try:
        yield
    finally:
        _suppression.depth = depth


def _suppressed_here() -> bool:
    return getattr(_suppression, "depth", 0) > 0


# -- the hooks production code calls --------------------------------------


def on_execute(connection: sqlite3.Connection) -> None:
    """Called by the SQL backend before executing a statement."""
    injector = _active
    if injector is not None and not _suppressed_here():
        injector.fire_execute(connection)


def on_lease(pool: "BackendPool") -> None:
    """Called by the backend pool while acquiring a lease."""
    injector = _active
    if injector is not None and not _suppressed_here():
        injector.fire_lease(pool)
