"""Native axis navigation over the tabular encoding.

These functions mirror the axis predicates of the paper's Fig. 3 exactly
and serve as the *reference semantics* for the relational compilation:
every engine in this repository (algebra interpreter, generated SQL,
physical planner, pureXML baseline) is differential-tested against them.

Notes
-----
* The non-attribute axes exclude ATTR rows, and the ``attribute`` axis
  selects exactly the ATTR rows one level below the context node inside
  its subtree — attributes are encoded as rows directly following their
  owner element (Fig. 2).
* ``following``/``preceding`` use the paper's global ``pre`` order
  predicates (``pre > pre° + size°`` resp. ``pre + size < pre°``).  When
  a table hosts several documents these axes therefore range over the
  whole table, exactly as the paper's encoding does.
* The sibling axes are not expressible as a single conjunctive
  range predicate over (context, result) rows in this encoding; they are
  realized as *parent-then-child* compositions with an extra ``pre``
  comparison — the same decomposition the compiler uses.
"""

from __future__ import annotations

from repro.infoset.encoding import DocTable
from repro.xmltree.model import NodeKind

_ATTR = int(NodeKind.ATTR)

#: The 12 axes of XQuery's full axis feature.
AXES = (
    "child",
    "descendant",
    "descendant-or-self",
    "self",
    "parent",
    "ancestor",
    "ancestor-or-self",
    "following",
    "preceding",
    "following-sibling",
    "preceding-sibling",
    "attribute",
)

#: Axes whose results are conjunctive range predicates over (context, node).
SIMPLE_AXES = frozenset(AXES) - {"following-sibling", "preceding-sibling"}

#: Dual (reverse) axis for each axis, per the pre/size duality of Fig. 3.
DUAL_AXIS = {
    "child": "parent",
    "parent": "child",
    "descendant": "ancestor",
    "ancestor": "descendant",
    "descendant-or-self": "ancestor-or-self",
    "ancestor-or-self": "descendant-or-self",
    "following": "preceding",
    "preceding": "following",
    "following-sibling": "preceding-sibling",
    "preceding-sibling": "following-sibling",
    "self": "self",
    "attribute": "parent",  # the attribute/owner relationship
}


def parent_of(table: DocTable, pre: int) -> int | None:
    """The parent node's ``pre`` rank, or ``None`` for a DOC row."""
    target = table.level[pre] - 1
    p = pre - 1
    while p >= 0:
        if table.level[p] == target and p + table.size[p] >= pre:
            return p
        p -= 1
    return None


def axis_nodes(table: DocTable, context: int, axis: str) -> list[int]:
    """All nodes reachable from ``context`` along ``axis``, in document
    order (ascending ``pre``), without any name/kind test applied."""
    size = table.size
    level = table.level
    kind = table.kind
    c_pre, c_size, c_level = context, size[context], level[context]
    n = len(table)

    if axis == "self":
        return [context]
    if axis == "attribute":
        return [
            p
            for p in range(c_pre + 1, c_pre + c_size + 1)
            if level[p] == c_level + 1 and kind[p] == _ATTR
        ]
    if axis == "child":
        return [
            p
            for p in range(c_pre + 1, c_pre + c_size + 1)
            if level[p] == c_level + 1 and kind[p] != _ATTR
        ]
    if axis == "descendant":
        return [
            p for p in range(c_pre + 1, c_pre + c_size + 1) if kind[p] != _ATTR
        ]
    if axis == "descendant-or-self":
        return [context] + axis_nodes(table, context, "descendant")
    if axis == "parent":
        parent = parent_of(table, context)
        return [] if parent is None else [parent]
    if axis == "ancestor":
        return [p for p in range(c_pre) if p + size[p] >= c_pre]
    if axis == "ancestor-or-self":
        return axis_nodes(table, context, "ancestor") + [context]
    if axis == "following":
        return [p for p in range(c_pre + c_size + 1, n) if kind[p] != _ATTR]
    if axis == "preceding":
        return [
            p for p in range(c_pre) if p + size[p] < c_pre and kind[p] != _ATTR
        ]
    if axis == "following-sibling":
        parent = parent_of(table, context)
        if parent is None:
            return []
        return [p for p in axis_nodes(table, parent, "child") if p > c_pre]
    if axis == "preceding-sibling":
        parent = parent_of(table, context)
        if parent is None:
            return []
        return [p for p in axis_nodes(table, parent, "child") if p < c_pre]
    raise ValueError(f"unknown axis {axis!r}")


def kind_name_test(
    table: DocTable, pre: int, kind_test: str | None, name_test: str | None
) -> bool:
    """Apply a node test (paper Fig. 3 left) to the row at ``pre``.

    ``kind_test`` is one of ``element``, ``attribute``, ``text``,
    ``comment``, ``processing-instruction``, ``document-node``, ``node``
    or ``None`` (same as ``node``); ``name_test`` is a tag/attribute name
    or ``None``/``"*"`` for a wildcard.
    """
    kind = table.kind[pre]
    wanted = {
        "element": int(NodeKind.ELEM),
        "attribute": int(NodeKind.ATTR),
        "text": int(NodeKind.TEXT),
        "comment": int(NodeKind.COMMENT),
        "processing-instruction": int(NodeKind.PI),
        "document-node": int(NodeKind.DOC),
    }
    if kind_test is not None and kind_test != "node":
        if kind != wanted[kind_test]:
            return False
    if name_test not in (None, "*"):
        if table.name[pre] != name_test:
            return False
    return True
