"""The ``doc`` table: shredding XML trees into pre/size/level rows."""

from __future__ import annotations

import itertools
import uuid
from typing import Iterable, NamedTuple

import numpy as np

from repro.errors import DocumentError
from repro.xmltree.model import (
    AttributeNode,
    CommentNode,
    DocumentNode,
    ElementNode,
    NodeKind,
    PINode,
    TextNode,
    XMLNode,
)
from repro.xmltree.parser import parse_document


class Row(NamedTuple):
    """One row of table ``doc`` (Fig. 2)."""

    pre: int
    size: int
    level: int
    kind: int
    name: str | None
    value: str | None
    data: float | None


def _decimal_cast(value: str) -> float | None:
    """Cast an untyped value to xs:decimal, or ``None`` if not castable."""
    try:
        return float(value.strip())
    except (ValueError, AttributeError):
        return None


#: per-process salt + monotonic counter behind :attr:`DocTable.uid` —
#: see the attribute's comment for why ``id()`` cannot be the identity
_PROCESS_TAG = uuid.uuid4().hex[:8]
_TABLE_IDS = itertools.count()


class DocTable:
    """Column-oriented, append-only encoding table for XML infosets.

    The table may host several trees; each tree contributes one DOC row
    whose ``name`` column carries the document URI.  ``pre`` ranks are
    global over the whole table so that subtree ranges of distinct
    documents never overlap.
    """

    def __init__(self) -> None:
        self.size: list[int] = []
        self.level: list[int] = []
        self.kind: list[int] = []
        self.name: list[str | None] = []
        self.value: list[str | None] = []
        self.data: list[float | None] = []
        #: monotonic content version, bumped on every mutation.  Row
        #: count is not a safe staleness key (replacing content can
        #: keep it identical); backends and compiled-query caches key
        #: their artifacts on this counter instead.
        self.version: int = 0
        #: stable table identity, minted at creation.  ``id(table)``
        #: is not a safe identity key: the allocator reuses addresses
        #: after GC (a fresh table can inherit a dead table's id and
        #: be served that table's cached artifacts), and across
        #: process boundaries ids carry no meaning at all.  The UID is
        #: monotonic within a process and salted with a per-process
        #: random tag so no two tables — in this process or any worker
        #: process — ever share one.
        self.uid: str = f"{_PROCESS_TAG}-{next(_TABLE_IDS)}"
        self._doc_roots: dict[str, int] = {}
        self._frozen: _FrozenColumns | None = None

    # -- population --------------------------------------------------------

    def add_tree(self, document: DocumentNode) -> int:
        """Shred a parsed document into the table.

        Returns the ``pre`` rank of the new DOC row.

        Raises
        ------
        DocumentError
            If a document with the same URI is already hosted.
        """
        uri = document.uri
        if uri in self._doc_roots:
            raise DocumentError(f"document {uri!r} already loaded")
        root_pre = len(self.size)
        self._shred(document)
        self._doc_roots[uri] = root_pre
        self._frozen = None
        self.version += 1
        return root_pre

    def add_document(self, text: str, uri: str) -> int:
        """Parse and shred an XML document given as text."""
        return self.add_tree(parse_document(text, uri=uri))

    def graft(self, other: "DocTable", root_pre: int) -> int:
        """Copy one whole document subtree (its DOC row plus all
        descendants) from another table, without re-shredding.

        ``level`` is document-relative (every DOC row sits at level 0),
        so rows transplant verbatim; only ``pre`` shifts by the copy
        offset.  Returns the new DOC row's ``pre`` rank.

        Raises
        ------
        DocumentError
            If ``root_pre`` is not a DOC row in ``other``, or a
            document with the same URI is already hosted here.
        """
        if other.kind[root_pre] != int(NodeKind.DOC):
            raise DocumentError(f"pre rank {root_pre} is not a DOC row")
        uri = other.name[root_pre]
        if uri is None or uri in self._doc_roots:
            raise DocumentError(f"document {uri!r} already loaded")
        new_root = len(self.size)
        end = root_pre + other.size[root_pre] + 1
        self.size.extend(other.size[root_pre:end])
        self.level.extend(other.level[root_pre:end])
        self.kind.extend(other.kind[root_pre:end])
        self.name.extend(other.name[root_pre:end])
        self.value.extend(other.value[root_pre:end])
        self.data.extend(other.data[root_pre:end])
        self._doc_roots[uri] = new_root
        self._frozen = None
        self.version += 1
        return new_root

    def _shred(self, node: XMLNode, level: int = 0) -> int:
        """Emit rows for ``node``'s subtree; returns the subtree size
        *including* ``node`` itself."""
        pre = len(self.size)
        self.size.append(0)  # patched below
        self.level.append(level)
        if isinstance(node, DocumentNode):
            self.kind.append(int(NodeKind.DOC))
            self.name.append(node.uri)
            self.value.append(None)
            self.data.append(None)
        elif isinstance(node, ElementNode):
            self.kind.append(int(NodeKind.ELEM))
            self.name.append(node.tag)
            self.value.append(None)  # patched below if size <= 1
            self.data.append(None)
        elif isinstance(node, AttributeNode):
            self.kind.append(int(NodeKind.ATTR))
            self.name.append(node.name)
            self.value.append(node.value)
            self.data.append(_decimal_cast(node.value))
        elif isinstance(node, TextNode):
            self.kind.append(int(NodeKind.TEXT))
            self.name.append(None)
            self.value.append(node.text)
            self.data.append(_decimal_cast(node.text))
        elif isinstance(node, CommentNode):
            self.kind.append(int(NodeKind.COMMENT))
            self.name.append(None)
            self.value.append(node.text)
            self.data.append(None)
        elif isinstance(node, PINode):
            self.kind.append(int(NodeKind.PI))
            self.name.append(node.target)
            self.value.append(node.text)
            self.data.append(None)
        else:  # pragma: no cover - exhaustive over the model
            raise TypeError(f"cannot shred {type(node).__name__}")

        subtree = 1
        if isinstance(node, ElementNode):
            for attr in node.attributes:
                subtree += self._shred(attr, level + 1)
        for child in node.children:
            subtree += self._shred(child, level + 1)
        self.size[pre] = subtree - 1

        if isinstance(node, ElementNode) and self.size[pre] <= 1:
            text = node.string_value()
            self.value[pre] = text
            self.data[pre] = _decimal_cast(text)
        return subtree

    # -- access ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.size)

    def row(self, pre: int) -> Row:
        """The full row for a given ``pre`` rank."""
        return Row(
            pre,
            self.size[pre],
            self.level[pre],
            self.kind[pre],
            self.name[pre],
            self.value[pre],
            self.data[pre],
        )

    def rows(self) -> Iterable[Row]:
        """All rows in ``pre`` order (a serialization-order table scan)."""
        for pre in range(len(self)):
            yield self.row(pre)

    @property
    def doc_uris(self) -> list[str]:
        """URIs of all hosted documents."""
        return list(self._doc_roots)

    def root_of(self, uri: str) -> int:
        """``pre`` rank of the DOC row for the given URI."""
        try:
            return self._doc_roots[uri]
        except KeyError:
            raise DocumentError(f"unknown document {uri!r}") from None

    def document_of(self, pre: int) -> int:
        """``pre`` rank of the DOC row whose tree contains ``pre``."""
        best = -1
        for root in self._doc_roots.values():
            if root <= pre <= root + self.size[root] and root > best:
                best = root
        if best < 0:
            raise DocumentError(f"pre rank {pre} not in any document")
        return best

    def string_value(self, pre: int) -> str:
        """XPath string value of the node at ``pre``.

        Served from the ``value`` column where materialized
        (``size <= 1``); computed by a subtree scan otherwise.
        """
        if self.value[pre] is not None and self.kind[pre] != int(NodeKind.COMMENT):
            if self.size[pre] <= 1:
                return self.value[pre]
        end = pre + self.size[pre]
        text_kind = int(NodeKind.TEXT)
        return "".join(
            self.value[p] or ""
            for p in range(pre, end + 1)
            if self.kind[p] == text_kind
        )

    # -- frozen numpy views (used by the planner and index layer) ----------

    def columns(self) -> "_FrozenColumns":
        """Immutable numpy views of the numeric columns plus the string
        columns as Python lists.  Cached until the table is mutated."""
        if self._frozen is None:
            self._frozen = _FrozenColumns(
                pre=np.arange(len(self.size), dtype=np.int64),
                size=np.asarray(self.size, dtype=np.int64),
                level=np.asarray(self.level, dtype=np.int64),
                kind=np.asarray(self.kind, dtype=np.int64),
                name=list(self.name),
                value=list(self.value),
                data=np.asarray(
                    [float("nan") if d is None else d for d in self.data],
                    dtype=np.float64,
                ),
            )
        return self._frozen


class _FrozenColumns(NamedTuple):
    pre: np.ndarray
    size: np.ndarray
    level: np.ndarray
    kind: np.ndarray
    name: list[str | None]
    value: list[str | None]
    data: np.ndarray


def shred(text: str, uri: str = "doc.xml") -> DocTable:
    """Convenience: shred a single XML document into a fresh table."""
    table = DocTable()
    table.add_document(text, uri)
    return table


def node_pre_map(document, root_pre: int = 0) -> dict[int, int]:
    """Map ``id(node)`` of every tree node to its ``pre`` rank in the
    encoding, given the DOC row's rank.  The shredder and
    ``iter_subtree`` emit nodes in the same order (node, attributes,
    children), so enumeration order *is* pre order — used to compare
    native (tree-based) engine results against relational ones."""
    return {
        id(node): root_pre + offset
        for offset, node in enumerate(document.iter_subtree())
    }


class DocumentStore:
    """A named collection of XML documents sharing one :class:`DocTable`.

    This is the object the query pipeline runs against: ``doc(uri)``
    references resolve against the store, and all documents share one
    encoding table — the single ``doc`` leaf of the algebra plans.
    """

    def __init__(self) -> None:
        self.table = DocTable()

    @property
    def version(self) -> int:
        """The table's monotonic content version (staleness key for
        backends and compiled-query caches)."""
        return self.table.version

    @property
    def uid(self) -> str:
        """The table's stable identity (see :attr:`DocTable.uid`)."""
        return self.table.uid

    def load(self, text: str, uri: str) -> int:
        """Parse and add a document; returns the DOC row's pre rank."""
        return self.table.add_document(text, uri)

    def load_tree(self, document: DocumentNode) -> int:
        """Add an already-parsed document tree."""
        return self.table.add_tree(document)

    def __contains__(self, uri: str) -> bool:
        return uri in self.table.doc_uris
