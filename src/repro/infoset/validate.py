"""Encoding validator: structural invariants of a ``doc`` table.

Useful when constructing tables by hand or ingesting foreign encodings
(any node-based scheme "fits the bill", paper Section 2.1 — provided
it satisfies these pre/size/level laws).
"""

from __future__ import annotations

from repro.errors import DocumentError
from repro.infoset.encoding import DocTable
from repro.xmltree.model import NodeKind

_DOC = int(NodeKind.DOC)
_ELEM = int(NodeKind.ELEM)
_ATTR = int(NodeKind.ATTR)


def validate_encoding(table: DocTable) -> None:
    """Check the pre/size/level invariants; raises
    :class:`DocumentError` on the first violation.

    * every subtree range lies inside the table and nests properly;
    * levels increase by exactly one along containment edges and reset
      to zero at DOC rows;
    * DOC rows appear only at level 0 and partition the table;
    * ATTR rows are leaves placed directly after their owner element;
    * ``value``/``data`` are materialized only for ``size <= 1`` rows.
    """
    n = len(table)
    expected_next_root = 0
    for pre in range(n):
        size = table.size[pre]
        level = table.level[pre]
        kind = table.kind[pre]
        end = pre + size
        if size < 0 or end >= n and end != n - 1:
            if end >= n:
                raise DocumentError(f"row {pre}: subtree exceeds the table")
        if kind == _DOC:
            if level != 0:
                raise DocumentError(f"DOC row {pre} not at level 0")
            if pre != expected_next_root:
                raise DocumentError(
                    f"DOC row {pre} does not start where the previous tree ended"
                )
            expected_next_root = end + 1
        if pre + 1 <= end:
            child_level = table.level[pre + 1]
            if child_level != level + 1:
                raise DocumentError(
                    f"row {pre + 1}: level {child_level}, expected {level + 1}"
                )
        # nesting: every row inside the range closes inside it
        for inner in range(pre + 1, end + 1):
            if inner + table.size[inner] > end:
                raise DocumentError(
                    f"row {inner}: subtree leaks out of ancestor {pre}"
                )
        if kind == _ATTR:
            if size != 0:
                raise DocumentError(f"ATTR row {pre} has a subtree")
            owner = pre - 1
            while owner >= 0 and table.kind[owner] == _ATTR:
                owner -= 1
            if owner < 0 or table.kind[owner] != _ELEM or table.level[owner] != level - 1:
                raise DocumentError(
                    f"ATTR row {pre} is not placed directly after its owner"
                )
        if size > 1 and table.value[pre] is not None and kind == _ELEM:
            raise DocumentError(
                f"row {pre}: value materialized despite size > 1"
            )
    if expected_next_root != n and n:
        raise DocumentError("trailing rows outside any document")
