"""Serialization of result node sequences from the tabular encoding.

The plan root operator of the algebra delivers rows that encode the
resulting XML node sequence as ``pre`` ranks; these helpers turn such a
sequence back into XML text by scanning each node's subtree range in
``pre`` order — the "table scan in pre order" of Section 2.1.
"""

from __future__ import annotations

from typing import Iterable

from repro.infoset.encoding import DocTable
from repro.xmltree.model import NodeKind
from repro.xmltree.serializer import escape_attribute, escape_text

_DOC = int(NodeKind.DOC)
_ELEM = int(NodeKind.ELEM)
_ATTR = int(NodeKind.ATTR)
_TEXT = int(NodeKind.TEXT)
_COMMENT = int(NodeKind.COMMENT)
_PI = int(NodeKind.PI)


def serialize_nodes(table: DocTable, pre: int) -> str:
    """Serialize the subtree rooted at ``pre`` to XML text."""
    kind = table.kind[pre]
    if kind == _TEXT:
        return escape_text(table.value[pre] or "")
    if kind == _ATTR:
        return f'{table.name[pre]}="{escape_attribute(table.value[pre] or "")}"'
    if kind == _COMMENT:
        return f"<!--{table.value[pre]}-->"
    if kind == _PI:
        return f"<?{table.name[pre]} {table.value[pre]}?>"
    if kind == _DOC:
        end = pre + table.size[pre]
        parts: list[str] = []
        p = pre + 1
        while p <= end:
            parts.append(serialize_nodes(table, p))
            p += table.size[p] + 1
        return "".join(parts)

    # element: single forward scan over the subtree range, closing tags
    # driven by the level column.
    return _serialize_element(table, pre)


def _serialize_element(table: DocTable, root: int) -> str:
    parts: list[str] = []
    end = root + table.size[root]
    open_stack: list[int] = []  # pre ranks of currently open elements
    p = root
    while p <= end:
        level = table.level[p]
        while open_stack and table.level[open_stack[-1]] >= level:
            closed = open_stack.pop()
            parts.append(f"</{table.name[closed]}>")
        kind = table.kind[p]
        if kind == _ELEM:
            # collect the element's attribute rows (they immediately follow)
            attrs: list[str] = []
            q = p + 1
            while q <= end and table.kind[q] == _ATTR and table.level[q] == level + 1:
                attrs.append(
                    f' {table.name[q]}="{escape_attribute(table.value[q] or "")}"'
                )
                q += 1
            if table.size[p] == q - p - 1:  # no non-attribute content
                parts.append(f"<{table.name[p]}{''.join(attrs)}/>")
            else:
                parts.append(f"<{table.name[p]}{''.join(attrs)}>")
                open_stack.append(p)
            p = q
            continue
        if kind == _TEXT:
            parts.append(escape_text(table.value[p] or ""))
        elif kind == _COMMENT:
            parts.append(f"<!--{table.value[p]}-->")
        elif kind == _PI:
            parts.append(f"<?{table.name[p]} {table.value[p]}?>")
        p += 1
    while open_stack:
        closed = open_stack.pop()
        parts.append(f"</{table.name[closed]}>")
    return "".join(parts)


def serialize_sequence(table: DocTable, pres: Iterable[int]) -> str:
    """Serialize a node sequence (e.g. a query result) to XML text.

    Nodes are emitted in the order given; adjacent items are not
    separated (standard XML serialization of a node sequence).
    """
    return "".join(serialize_nodes(table, pre) for pre in pres)
