"""Loop-lifted staircase join (paper Section 2.4 / [5], [13]).

MonetDB/XQuery replaces the Step rule's ``⋈_axis(α)`` by a structural
join operator that, after join graph isolation, becomes a physical
*loop-lifted staircase join*: for each loop iteration's context node
set, exploit the pre/size encoding to

* **prune** context nodes whose axis result is covered by another
  context of the same iteration (a context inside another's subtree
  contributes no new descendants; only the earliest subtree end
  matters for ``following``; only the latest ``pre`` for
  ``preceding``; nested contexts share their outer ancestors), and
* **scan** the document once per iteration along the pruned
  "staircase" of ranges, emitting each result node exactly once.

This yields the per-iteration duplicate-free, document-ordered result
that ``fs:ddo(step)`` demands — without materializing per-context
intermediates.  The module is a faithful substrate reproduction; the
main pipeline uses the relational join formulation, and
``benchmarks/bench_staircase.py`` compares the two.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Iterable, Sequence

from repro.infoset.encoding import DocTable
from repro.infoset.navigation import axis_nodes
from repro.xmltree.model import NodeKind

_ATTR = int(NodeKind.ATTR)

#: axes with a staircase evaluation strategy
STAIRCASE_AXES = ("descendant", "ancestor", "following", "preceding")


def prune_contexts(table: DocTable, contexts: Sequence[int], axis: str) -> list[int]:
    """The pruned context set for one iteration (paper [13]'s pruning):
    the smallest subset producing the same axis result union."""
    if not contexts:
        return []
    ordered = sorted(set(contexts))
    if axis == "descendant":
        kept: list[int] = []
        horizon = -1  # end of the last kept subtree
        for pre in ordered:
            if pre + table.size[pre] <= horizon:
                continue  # fully covered by a previous context
            kept.append(pre)
            horizon = max(horizon, pre + table.size[pre])
        return kept
    if axis == "following":
        # following(v) = (pre_v + size_v, end]; the earliest subtree
        # end dominates every other context
        best = min(ordered, key=lambda p: p + table.size[p])
        return [best]
    if axis == "preceding":
        # preceding(v) = nodes whose subtree ends before pre_v; the
        # largest pre dominates
        return [max(ordered)]
    if axis == "ancestor":
        # a context inside another context's subtree shares all
        # ancestors above the outer one; keeping the outermost chain
        # representatives is handled during the merge scan instead
        return ordered
    raise ValueError(f"axis {axis!r} has no staircase strategy")


def staircase_join(
    table: DocTable,
    contexts_by_iter: dict[int, Sequence[int]],
    axis: str,
) -> dict[int, list[int]]:
    """Evaluate one location step (no node test) for every iteration's
    context set: duplicate-free, document-ordered results per iteration.
    """
    if axis not in STAIRCASE_AXES:
        raise ValueError(f"axis {axis!r} has no staircase strategy")
    out: dict[int, list[int]] = {}
    for iteration, contexts in contexts_by_iter.items():
        pruned = prune_contexts(table, contexts, axis)
        if not pruned:
            out[iteration] = []
        elif axis == "descendant":
            out[iteration] = _scan_descendant(table, pruned)
        elif axis == "following":
            out[iteration] = _scan_following(table, pruned)
        elif axis == "preceding":
            out[iteration] = _scan_preceding(table, pruned)
        else:
            out[iteration] = _scan_ancestor(table, pruned)
    return out


def _scan_descendant(table: DocTable, pruned: list[int]) -> list[int]:
    """One forward scan over the merged staircase of subtree ranges."""
    result: list[int] = []
    horizon = -1
    for context in pruned:
        start = max(context + 1, horizon + 1)
        end = context + table.size[context]
        for pre in range(start, end + 1):
            if table.kind[pre] != _ATTR:
                result.append(pre)
        horizon = max(horizon, end)
    return result


def _scan_following(table: DocTable, pruned: list[int]) -> list[int]:
    context = pruned[0]
    start = context + table.size[context] + 1
    return [p for p in range(start, len(table)) if table.kind[p] != _ATTR]


def _scan_preceding(table: DocTable, pruned: list[int]) -> list[int]:
    context = pruned[0]
    return [
        p
        for p in range(context)
        if p + table.size[p] < context and table.kind[p] != _ATTR
    ]


def _scan_ancestor(table: DocTable, pruned: list[int]) -> list[int]:
    """Merge the ancestor chains of all contexts; shared upper chains
    are walked once (the visited set is the staircase's memory)."""
    seen: set[int] = set()
    ordered: list[int] = []
    for context in pruned:
        current: int | None = context
        chain: list[int] = []
        while True:
            current = _parent(table, current)
            if current is None or current in seen:
                break
            seen.add(current)
            chain.append(current)
        for pre in chain:
            insort(ordered, pre)
    return ordered


def _parent(table: DocTable, pre: int) -> int | None:
    target = table.level[pre] - 1
    p = pre - 1
    while p >= 0:
        if table.level[p] == target and p + table.size[p] >= pre:
            return p
        p -= 1
    return None


def naive_union(
    table: DocTable,
    contexts_by_iter: dict[int, Sequence[int]],
    axis: str,
) -> dict[int, list[int]]:
    """Reference implementation: per-context navigation, union + sort —
    what the staircase join avoids.  Used in tests and as the baseline
    in ``benchmarks/bench_staircase.py``."""
    out: dict[int, list[int]] = {}
    for iteration, contexts in contexts_by_iter.items():
        merged: set[int] = set()
        for context in contexts:
            merged.update(axis_nodes(table, context, axis))
        out[iteration] = sorted(merged)
    return out
