"""Tabular XML infoset encoding (paper Section 2.1, Fig. 2).

For each node ``v`` of an XML document, a row of the ``doc`` table stores

====== =======================================================
column meaning
====== =======================================================
pre    document order rank (the row key)
size   number of nodes in the subtree below ``v``
level  length of the path from ``v`` to its document root
kind   node kind (DOC, ELEM, ATTR, TEXT, COMMENT, PI)
name   tag / attribute name; the document URI for DOC rows
value  untyped string value, for nodes with ``size <= 1``
data   result of casting ``value`` to xs:decimal, if possible
====== =======================================================

One :class:`DocTable` may host several trees (multiple DOC rows,
distinguished by URI in ``name``), exactly as described in the paper.
"""

from repro.infoset.encoding import DocTable, DocumentStore, Row, shred
from repro.infoset.navigation import AXES, axis_nodes
from repro.infoset.serialize import serialize_nodes, serialize_sequence
from repro.infoset.staircase import STAIRCASE_AXES, prune_contexts, staircase_join
from repro.infoset.validate import validate_encoding

__all__ = [
    "AXES",
    "STAIRCASE_AXES",
    "DocTable",
    "DocumentStore",
    "Row",
    "axis_nodes",
    "serialize_nodes",
    "prune_contexts",
    "serialize_sequence",
    "shred",
    "staircase_join",
    "validate_encoding",
]
