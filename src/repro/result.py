"""Typed query results.

:class:`Result` is what ``execute()`` returns across the whole stack —
:class:`repro.pipeline.XQueryProcessor`, :class:`repro.service.QueryService`,
the sharded scatter-gather service, and the :class:`repro.api.Session`
facade all produce the same shape: the item sequence plus execution
metadata (engine, per-phase timings, shard fan-out width) and an
attached serializer.

Backward compatibility: for one release ``Result`` still *is* the bare
item list earlier releases returned (it subclasses :class:`list`), and
``run()``'s :class:`Serialized` still *is* the XML string — equality
checks, indexing and substring tests written against the old API keep
passing unchanged.  That implicit shape is deprecated; new code should
use ``.items`` / ``.serialize()``, and :func:`legacy_items` exists for
callers that need the old plain-list value explicitly (it warns).
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, Iterable, Mapping

__all__ = ["Result", "Serialized", "legacy_items"]


class Result(list):
    """The typed result of one query execution.

    The sequence items are ``pre`` ranks for node results and ``1``
    markers for boolean (existential comparison) results, exactly as
    before.  Metadata rides along as attributes:

    ``engine``
        The :class:`repro.Engine` that produced the result.
    ``timings``
        Nanosecond phase timings (``execute_ns``, and for scatter-gather
        runs ``merge_ns``).
    ``shards``
        How many shards the execution fanned out over (1 for serial).
    """

    __slots__ = ("engine", "timings", "shards", "_serializer")

    def __init__(
        self,
        items: Iterable[Any],
        *,
        engine: Any = None,
        timings: Mapping[str, Any] | None = None,
        shards: int = 1,
        serializer: Callable[[list[Any]], str] | None = None,
    ):
        super().__init__(items)
        self.engine = engine
        self.timings: dict[str, Any] = dict(timings or {})
        self.shards = shards
        self._serializer = serializer

    @property
    def items(self) -> list[Any]:
        """The raw item sequence as a plain list."""
        return list(self)

    def serialize(self) -> str:
        """Serialize a node-sequence result back to XML text."""
        if self._serializer is None:
            raise TypeError(
                "this Result carries no serializer (it was built from "
                "raw items); serialize through the processor instead"
            )
        return self._serializer(list(self))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Result(items={list(self)!r}, engine={self.engine!s}, "
            f"shards={self.shards})"
        )


class Serialized(str):
    """``run()``'s return value: the serialized XML text, with the
    :class:`Result` it was rendered from attached as ``.result``.
    Subclasses :class:`str`, so all existing string handling keeps
    working."""

    result: Result | None

    def __new__(cls, text: str, result: Result | None = None) -> "Serialized":
        obj = super().__new__(cls, text)
        obj.result = result
        return obj


def legacy_items(result: Iterable[Any]) -> list[Any]:
    """Deprecated shim: the bare-list return value of pre-redesign
    ``execute()``.  Exists so migrating code can make the old shape
    explicit; warns on every call."""
    warnings.warn(
        "legacy_items() and the bare-list Result shape are deprecated; "
        "use Result.items (or the Result itself — it is still a list)",
        DeprecationWarning,
        stacklevel=2,
    )
    return list(result)
