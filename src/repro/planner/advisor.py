"""Workload-driven index advisor (the paper's db2advis stand-in).

Given representative queries in :class:`repro.sql.FlatQuery` form, the
advisor inspects the per-alias predicate shapes of the join graphs and
proposes the composite B-tree keys of paper Table 6:

========  =====================================================
key       deployment
========  =====================================================
nkspl     XPath node test + axis step (child: level adjacent)
nksp      XPath node test + axis step, document node access
nlkp      value comparison with subsequent/preceding step
nlkps     serialization-oriented node test + subtree range
vnlkp     atomization / general value comparison (value prefix)
nlkpv     node test with value payload
nkdlp     typed (decimal) comparison after node test
p|nvkls   serialization support (pre prefix, covering columns)
========  =====================================================

Column letters: p = pre, s = size, l = level, k = kind, n = name,
v = value, d = data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.algebra.expressions import ColRef, Comparison, Const, Expr, Plus
from repro.sql.codegen import FlatQuery, _QUALIFIED


@dataclass(frozen=True)
class AdvisedIndex:
    """One proposed index with its Table 6 short key name."""

    short_name: str  # e.g. "nkspl"
    key: tuple[str, ...]
    deployment: str

    @property
    def ddl_name(self) -> str:
        return "idx_" + self.short_name.replace("|", "_")


_LETTER = {
    "p": "pre",
    "s": "size",
    "l": "level",
    "k": "kind",
    "n": "name",
    "v": "value",
    "d": "data",
}


def _key(letters: str) -> tuple[str, ...]:
    return tuple(_LETTER[c] for c in letters.replace("|", ""))


@dataclass
class _AliasShape:
    """Predicate shape observed for one doc alias across the workload."""

    name_eq: bool = False
    kind_eq: bool = False
    pre_range: bool = False
    level_adjacent: bool = False  # level + 1 = level (child/parent axes)
    data_compared: bool = False
    value_compared: bool = False
    value_joined: bool = False
    serialization: bool = False  # pre-range step with node() test


def _alias_of(expr: Expr) -> str | None:
    if isinstance(expr, ColRef):
        m = _QUALIFIED.match(expr.name)
        return m.group(1) if m else None
    return None


def _column_of(expr: Expr) -> str | None:
    if isinstance(expr, ColRef):
        m = _QUALIFIED.match(expr.name)
        return m.group(2) if m else None
    return None


def _analyze(query: FlatQuery) -> dict[str, _AliasShape]:
    shapes: dict[str, _AliasShape] = {a: _AliasShape() for a in query.aliases}

    def shape(expr: Expr) -> _AliasShape | None:
        alias = _alias_of(expr)
        return shapes.get(alias) if alias else None

    for conjunct in query.conjuncts:
        if not isinstance(conjunct, Comparison):
            continue
        left, right = conjunct.left, conjunct.right
        for side, other in ((left, right), (right, left)):
            s = shape(side)
            if s is None:
                continue
            column = _column_of(side)
            if isinstance(other, Const):
                if column == "name":
                    s.name_eq = True
                elif column == "kind":
                    s.kind_eq = True
                elif column == "data":
                    s.data_compared = True
                elif column == "value":
                    s.value_compared = True
            else:
                if column == "pre":
                    s.pre_range = True
                elif column == "value" and _column_of(other) == "value":
                    s.value_joined = True
        # level adjacency: level + 1 = level across aliases
        for side in (left, right):
            if isinstance(side, Plus):
                inner = side.left if isinstance(side.left, ColRef) else side.right
                if isinstance(inner, ColRef) and _column_of(inner) == "level":
                    other_side = right if side is left else left
                    s2 = shape(other_side)
                    if s2 is not None and _column_of(other_side) == "level":
                        s2.level_adjacent = True

    for alias, s in shapes.items():
        if s.pre_range and not s.name_eq and not s.kind_eq:
            s.serialization = True  # node() step: subtree traversal
    return shapes


def advise_indexes(queries: Iterable[FlatQuery]) -> list[AdvisedIndex]:
    """Propose the index set for a workload (paper Table 6)."""
    combined: list[_AliasShape] = []
    for query in queries:
        combined.extend(_analyze(query).values())

    proposals: dict[str, AdvisedIndex] = {}

    def propose(short: str, deployment: str) -> None:
        proposals.setdefault(
            short, AdvisedIndex(short, _key(short), deployment)
        )

    for s in combined:
        if s.name_eq and s.kind_eq and s.pre_range:
            propose(
                "nksp",
                "XPath node test and axis step, access document node (doc(.))",
            )
            if s.level_adjacent:
                propose(
                    "nkspl",
                    "XPath node test and axis step (child/parent: level-adjacent)",
                )
        if s.data_compared and s.name_eq:
            propose(
                "nkdlp",
                "Atomization, typed value comparison with subsequent/"
                "preceding XPath step",
            )
        if s.value_joined or s.value_compared:
            propose(
                "vnlkp",
                "Atomization, value comparison with subsequent/preceding "
                "XPath step",
            )
            propose("nlkpv", "Node test with value payload for value joins")
            propose("nlkp", "Value comparison with subsequent/preceding step")
        if s.name_eq and s.kind_eq and s.level_adjacent:
            propose("nlkps", "Child-step node test with subtree range payload")
        if s.serialization:
            propose(
                "p|nvkls",
                "Serialization support (with columns nvkls in the "
                "INCLUDE(.) clause)",
            )

    order = ["nkspl", "nksp", "nlkp", "nlkps", "vnlkp", "nlkpv", "nkdlp", "p|nvkls"]
    return sorted(
        proposals.values(),
        key=lambda p: order.index(p.short_name) if p.short_name in order else 99,
    )
