"""Composite-key B-tree indexes over the ``doc`` encoding table.

These play the role of the "vanilla B-tree indexes provided by any
RDBMS kernel" the paper relies on: a sorted array of composite keys
answered by binary search, supporting equality on a key prefix followed
by one range condition on the next key column — exactly the lookup
shape of the paper's XPath continuations (Section 4.1).
"""

from __future__ import annotations

import bisect
from typing import Iterable, Sequence

from repro.algebra.expressions import Value
from repro.infoset.encoding import DocTable

#: markers bracketing every concrete value in the encoded key order
_LOW = (0,)
_HIGH = (2,)


def _encode(value: Value) -> tuple:
    """Total order over int/float/str/None (None first, like NULLS
    FIRST); strings and numbers live in disjoint bands."""
    if value is None:
        return (1, 0)
    if isinstance(value, str):
        return (1, 2, value)
    return (1, 1, float(value))


class BTreeIndex:
    """One composite-key index, e.g. ``nkspl`` = (name, kind, size,
    pre, level).

    ``scan`` answers: equality on the first ``len(equals)`` key columns
    plus an optional range on the next column, returning the ``pre``
    ranks of matching rows in key order.
    """

    def __init__(self, name: str, key: Sequence[str], table: DocTable):
        self.name = name
        self.key = tuple(key)
        self._table = table
        columns = {
            "pre": range(len(table)),
            "size": table.size,
            "level": table.level,
            "kind": table.kind,
            "name": table.name,
            "value": table.value,
            "data": table.data,
        }
        key_columns = [list(columns[c]) for c in self.key]
        entries = []
        for pre in range(len(table)):
            encoded = tuple(_encode(col[pre]) for col in key_columns)
            entries.append((encoded, pre))
        entries.sort()
        self._keys = [e[0] for e in entries]
        self._pres = [e[1] for e in entries]

    def __len__(self) -> int:
        return len(self._keys)

    # -- capability tests ------------------------------------------------

    def prefix_coverage(
        self, eq_cols: set[str], range_col: str | None
    ) -> int | None:
        """How many leading key columns this index consumes for the
        given equality columns and optional range column; ``None`` when
        the index cannot serve the combination.

        The range column may sit *behind* the equality prefix with
        other key columns in between: the scan then walks the equality
        group and filters on the range component in the index — the
        B-tree acts as a partitioned tag stream (paper Section 4,
        "Partitioned B-tree index support")."""
        used = 0
        for key_col in self.key:
            if key_col in eq_cols:
                used += 1
                continue
            break
        if range_col is not None:
            if range_col in self.key[used:]:
                position = self.key.index(range_col, used)
                if position == used:
                    return used + 1  # adjacent: bisect range scan
                return used if used else None  # in-group filter
            return None  # range column not in the key at all
        return used if used else None

    def range_adjacent(self, eq_cols: set[str], range_col: str) -> bool:
        """True when the range column directly follows the usable
        equality prefix (bisect range scan, no in-index filtering)."""
        used = 0
        for key_col in self.key:
            if key_col in eq_cols:
                used += 1
                continue
            break
        return used < len(self.key) and self.key[used] == range_col

    # -- lookups -----------------------------------------------------------

    def scan(
        self,
        equals: dict[str, Value] | None = None,
        range_col: str | None = None,
        low: Value = None,
        high: Value = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> list[int]:
        """``pre`` ranks of rows matching the prefix lookup.

        ``equals`` must bind a prefix of the key; ``range_col`` must be
        the key column immediately following that prefix.
        """
        equals = equals or {}
        prefix: list[tuple] = []
        for key_col in self.key[: len(equals)]:
            if key_col not in equals:
                raise ValueError(
                    f"index {self.name}: {key_col!r} missing from equality prefix"
                )
            prefix.append(_encode(equals[key_col]))
        filter_position: int | None = None
        if range_col is not None and (
            len(self.key) <= len(prefix) or self.key[len(prefix)] != range_col
        ):
            # non-adjacent range column: walk the equality group and
            # filter on the range component inside the index entries
            if range_col not in self.key[len(prefix) :]:
                raise ValueError(
                    f"index {self.name}: range column {range_col!r} is not "
                    f"behind the equality prefix {self.key[: len(prefix)]}"
                )
            filter_position = self.key.index(range_col, len(prefix))
            return self._scan_with_filter(
                tuple(prefix),
                filter_position,
                low,
                high,
                low_inclusive,
                high_inclusive,
            )

        # encoded component with (3,) appended sorts directly after every
        # key whose component equals the value — the "just past" marker.
        # A half-open range is clamped to its value band (NULLs and
        # values of the other type never satisfy a comparison, matching
        # SQL semantics).
        base = tuple(prefix)
        band: float | None = None
        for bound in (low, high):
            if bound is not None:
                band = 2 if isinstance(bound, str) else 1
                break
        if range_col is not None and low is not None:
            lo_component = _encode(low) if low_inclusive else _encode(low) + (3,)
            lo_key = base + (lo_component,)
        elif range_col is not None and band is not None:
            lo_key = base + ((1, band),)  # start of the band
        else:
            lo_key = base
        if range_col is not None and high is not None:
            hi_component = _encode(high) + (3,) if high_inclusive else _encode(high)
            hi_key = base + (hi_component,)
        elif range_col is not None and band is not None:
            hi_key = base + ((1, band + 0.5),)  # just past the band
        elif base:
            hi_key = base + ((3,),)  # end of the equality-prefix group
        else:
            hi_key = None  # full scan
        lo_index = bisect.bisect_left(self._keys, lo_key)
        hi_index = (
            len(self._keys)
            if hi_key is None
            else bisect.bisect_left(self._keys, hi_key)
        )
        return self._pres[lo_index:hi_index]

    def _scan_with_filter(
        self,
        prefix: tuple,
        position: int,
        low: Value,
        high: Value,
        low_inclusive: bool,
        high_inclusive: bool,
    ) -> list[int]:
        """Equality-group walk with an in-index range filter on the key
        component at ``position``."""
        lo_index = bisect.bisect_left(self._keys, prefix)
        hi_index = (
            bisect.bisect_left(self._keys, prefix + ((3,),))
            if prefix
            else len(self._keys)
        )
        lo_enc = _encode(low) if low is not None else None
        hi_enc = _encode(high) if high is not None else None
        out: list[int] = []
        for i in range(lo_index, hi_index):
            component = self._keys[i][position]
            if lo_enc is not None:
                if component < lo_enc or (not low_inclusive and component == lo_enc):
                    continue
            if hi_enc is not None:
                if component > hi_enc or (not high_inclusive and component == hi_enc):
                    continue
            if (lo_enc or hi_enc) and component[:2] != (
                (lo_enc or hi_enc)[:2]
            ):
                continue  # other value band (NULL / mixed types)
            out.append(self._pres[i])
        return out

    def estimated_entries(self, equals: dict[str, Value]) -> int:
        """Estimated number of entries matching an equality prefix —
        an exact count here (the sorted array makes it cheap), which is
        what ANALYZE-style statistics approximate in a real system."""
        prefix = tuple(_encode(equals[c]) for c in self.key[: len(equals)])
        lo = bisect.bisect_left(self._keys, prefix)
        hi = bisect.bisect_right(self._keys, prefix + _HIGH_SUFFIX)
        return hi - lo


_HIGH_SUFFIX = ((3,),) * 8  # sorts after every encoded value tuple


class IndexCatalog:
    """The set of indexes available to the planner (Table 6 by default)."""

    def __init__(self, table: DocTable, definitions: dict[str, Sequence[str]]):
        self.table = table
        self.indexes = {
            name: BTreeIndex(name, key, table) for name, key in definitions.items()
        }

    def best_for(
        self, eq_cols: set[str], range_col: str | None
    ) -> "BTreeIndex | None":
        """The index serving the predicate shape best: longest equality
        prefix first (it bounds the entries visited), then an adjacent
        range (bisect vs in-group filter), then shorter keys."""
        best: BTreeIndex | None = None
        best_score: tuple[int, int, int] | None = None
        for index in self.indexes.values():
            coverage = index.prefix_coverage(eq_cols, range_col)
            if coverage is None:
                continue
            adjacent = (
                1
                if range_col is not None and index.range_adjacent(eq_cols, range_col)
                else 0
            )
            score = (coverage, adjacent, -len(index.key))
            if best_score is None or score > best_score:
                best, best_score = index, score
        return best

    def __iter__(self) -> Iterable[BTreeIndex]:
        return iter(self.indexes.values())
