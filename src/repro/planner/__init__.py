"""A from-scratch relational optimizer + physical engine (the DB2 V9
stand-in of the paper's Section 4).

Given the declarative :class:`repro.sql.FlatQuery` of an isolated
plan, the planner

* selects access paths among composite-key B-tree indexes
  (:mod:`repro.planner.indexes`, the Table 6 set proposed by
  :mod:`repro.planner.advisor`),
* runs cost-based greedy join ordering driven by classical
  selectivities (:mod:`repro.planner.stats`),
* emits physical plans over the Table 7 operator vocabulary
  (RETURN / SORT / NLJOIN / HSJOIN / IXSCAN / TBSCAN) that actually
  execute (:mod:`repro.planner.physical`), and
* renders Fig. 10/11-style explain output with XPath *continuation*
  annotations, making step reordering, axis reversal and path
  stitching observable (:mod:`repro.planner.explain`).
"""

from repro.planner.indexes import BTreeIndex, IndexCatalog
from repro.planner.stats import TableStatistics
from repro.planner.advisor import AdvisedIndex, advise_indexes
from repro.planner.joinplan import JoinGraphPlanner, PhysicalQuery
from repro.planner.explain import audit_explain, explain_plan, plan_phenomena

__all__ = [
    "AdvisedIndex",
    "BTreeIndex",
    "IndexCatalog",
    "JoinGraphPlanner",
    "PhysicalQuery",
    "TableStatistics",
    "advise_indexes",
    "audit_explain",
    "explain_plan",
    "plan_phenomena",
]
