"""Table statistics for selectivity estimation.

Mirrors what an RDBMS collects at ANALYZE time: row counts, per-column
distinct counts, the tag-name distribution (the paper notes an XMark
instance has 77 distinct names regardless of size — name predicates
are the planner's main selectivity lever), and equi-depth samples of
the typed ``data`` column for range selectivities like
``price > 500``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.algebra.expressions import Value
from repro.infoset.encoding import DocTable


@dataclass
class TableStatistics:
    """Statistics over one ``doc`` table."""

    row_count: int
    name_frequency: Counter = field(default_factory=Counter)
    name_kind_frequency: Counter = field(default_factory=Counter)
    kind_frequency: Counter = field(default_factory=Counter)
    value_distinct: int = 1
    data_sample: list[float] = field(default_factory=list)
    max_level: int = 0

    @classmethod
    def collect(cls, table: DocTable, sample_size: int = 1024) -> "TableStatistics":
        stats = cls(row_count=len(table))
        stats.name_frequency = Counter(n for n in table.name if n is not None)
        stats.kind_frequency = Counter(table.kind)
        stats.name_kind_frequency = Counter(
            (n, k) for n, k in zip(table.name, table.kind) if n is not None
        )
        values = {v for v in table.value if v is not None}
        stats.value_distinct = max(1, len(values))
        numeric = sorted(d for d in table.data if d is not None)
        if numeric:
            step = max(1, len(numeric) // sample_size)
            stats.data_sample = numeric[::step]
        stats.max_level = max(table.level, default=0)
        return stats

    # -- selectivity estimators --------------------------------------------

    def eq_cardinality(self, column: str, value: Value) -> float:
        """Estimated rows with ``column = value``."""
        if self.row_count == 0:
            return 0.0
        if column == "name":
            return float(self.name_frequency.get(value, 0))
        if column == "kind":
            return float(self.kind_frequency.get(value, 0))
        if column == "pre":
            return 1.0
        if column in ("value", "data"):
            return self.row_count / max(self.value_distinct, 1)
        if column == "level":
            return self.row_count / max(self.max_level + 1, 1)
        return self.row_count / 10.0

    def name_kind_cardinality(self, name: Value, kind: Value) -> float:
        """Estimated rows with both name and kind pinned."""
        return float(self.name_kind_frequency.get((name, kind), 0))

    def data_range_fraction(self, op: str, bound: float) -> float:
        """Fraction of non-null ``data`` values satisfying ``data op
        bound`` — from the equi-depth sample."""
        sample = self.data_sample
        if not sample:
            return 0.1
        import bisect

        if op in (">", ">="):
            position = bisect.bisect_left(sample, bound)
            return (len(sample) - position) / len(sample)
        if op in ("<", "<="):
            position = bisect.bisect_right(sample, bound)
            return position / len(sample)
        if op == "=":
            return 1.0 / max(self.value_distinct, 1)
        return 0.5

    def join_fanout(self) -> float:
        """Crude average fan-out of a structural (range) join edge:
        subtree sizes are about row_count / distinct names."""
        names = max(1, len(self.name_frequency))
        return max(1.0, self.row_count / (names * 4))
