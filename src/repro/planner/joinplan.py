"""Cost-based join tree planning over isolated join graphs.

The planner receives the declarative :class:`repro.sql.FlatQuery` — a
bundle of ``doc`` aliases and conjuncts — and produces a left-deep
physical plan, exactly the job the paper hands to DB2's optimizer:

1. pick the most selective alias (by name/kind frequency and value
   range fractions) as the leading leg;
2. greedily extend with the cheapest connected alias, realizing each
   extension as an index nested-loop join whose inner leg is a B-tree
   *continuation*: equality prefix from the node test, range component
   bound by the outer binding (Section 4.1);
3. value-equality edges with a large build side become hash joins
   (Fig. 11's HSJOIN);
4. a SORT (with duplicate elimination for the DISTINCT basis) and a
   RETURN form the tail.

Because the planner is free to start anywhere in the step sequence and
to orient each range edge either way, **step reordering** and **axis
reversal** fall out of cost-based ordering exactly as the paper
describes for DB2 — see :func:`repro.planner.explain.plan_phenomena`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.expressions import (
    ColRef,
    Comparison,
    Const,
    Expr,
    MIRRORED,
    Value,
)
from repro.errors import PlanError
from repro.infoset.encoding import DocTable
from repro.planner.indexes import BTreeIndex, IndexCatalog
from repro.planner.physical import (
    FilterOp,
    HsJoin,
    IxScan,
    NLJoin,
    PhysicalOp,
    Probe,
    Return,
    Sort,
    TbScan,
    compile_expr,
)
from repro.planner.stats import TableStatistics
from repro.sql.backend import TABLE6_INDEXES
from repro.sql.codegen import FlatQuery, _QUALIFIED


def _aliases_of(expr: Expr) -> frozenset[str]:
    out = set()
    for name in expr.cols():
        m = _QUALIFIED.match(name)
        if m:
            out.add(m.group(1))
    return frozenset(out)


def _split_qualified(name: str) -> tuple[str, str] | None:
    m = _QUALIFIED.match(name)
    return (m.group(1), m.group(2)) if m else None


@dataclass
class Bound:
    """One comparison bounding a candidate column by an expression over
    already-planned aliases: ``<alias>.<col> <op> <expr>``."""

    op: str
    column: str
    expr: Expr  # over planned aliases / constants
    source: Expr  # the original conjunct


@dataclass
class StepInfo:
    """Metadata about one planning step (for explain / analysis)."""

    alias: str
    kind: str  # 'leaf' | 'nljoin' | 'hsjoin' | 'cross'
    index: str | None
    node_test: dict[str, Value] = field(default_factory=dict)
    range_col: str | None = None
    bounds: list[Bound] = field(default_factory=list)
    bound_sources: frozenset[str] = frozenset()
    early_out: bool = False
    estimated_cardinality: float = 0.0
    #: every alias this step's predicates mention (for semi-join safety)
    all_refs: frozenset[str] = frozenset()


@dataclass
class PhysicalQuery:
    """A planned, executable physical query."""

    root: Return
    steps: list[StepInfo]
    flat: FlatQuery

    def execute(self) -> list[Value]:
        """Run the plan; returns the item sequence."""
        return self.root.items()

    @property
    def join_order(self) -> list[str]:
        return [s.alias for s in self.steps]


class JoinGraphPlanner:
    """Plans and executes isolated join graphs over one ``doc`` table.

    Parameters
    ----------
    mode:
        ``"statistics"`` (default) orders joins by classical
        selectivity estimates; ``"sampling"`` additionally *measures*
        each candidate continuation's fan-out on a small sample of the
        already-built intermediate result before committing to it —
        the "zero-investment" runtime optimization idea the paper's
        Section 5 cites as the follow-up to join graph isolation
        (ROX [2]).  Sampling overcomes selectivity misestimation at a
        small planning cost.
    sample_size:
        Number of intermediate bindings probed per candidate in
        sampling mode.
    """

    def __init__(
        self,
        table: DocTable,
        catalog: IndexCatalog | None = None,
        stats: TableStatistics | None = None,
        mode: str = "statistics",
        sample_size: int = 24,
    ):
        if mode not in ("statistics", "sampling"):
            raise ValueError(f"unknown planner mode {mode!r}")
        self.table = table
        self.catalog = catalog or IndexCatalog(table, TABLE6_INDEXES)
        self.stats = stats or TableStatistics.collect(table)
        self.mode = mode
        self.sample_size = sample_size

    # -- public API --------------------------------------------------------

    def plan(self, flat: FlatQuery) -> PhysicalQuery:
        """Produce a physical plan for an isolated query."""
        if flat.impossible:
            empty = TbScan(self.table, "d0", [lambda b: False])
            return PhysicalQuery(
                Return(empty, lambda b: None), [], flat
            )
        state = _PlanState(self, flat)
        state.run()
        return state.finish()


class _PlanState:
    """One planning episode (mutable working state)."""

    def __init__(self, planner: JoinGraphPlanner, flat: FlatQuery):
        self.planner = planner
        self.table = planner.table
        self.stats = planner.stats
        self.catalog = planner.catalog
        self.flat = flat
        self.aliases = list(flat.aliases)
        self.local: dict[str, list[Expr]] = {a: [] for a in self.aliases}
        self.cross: list[Expr] = []
        for conjunct in flat.conjuncts:
            involved = _aliases_of(conjunct)
            if len(involved) == 1:
                self.local[next(iter(involved))].append(conjunct)
            elif involved:
                self.cross.append(conjunct)
        self.planned: list[str] = []
        self.plan_ops: PhysicalOp | None = None
        self.steps: list[StepInfo] = []
        self.consumed: set[int] = set()  # ids of consumed cross conjuncts
        self.cardinality = 1.0
        #: aliases referenced by the output (item / order / distinct)
        self.output_refs: set[str] = set()
        for expr in [flat.item, *flat.order, *(flat.distinct or [])]:
            self.output_refs |= _aliases_of(expr)

    # -- per-alias access-path analysis ---------------------------------

    def local_shape(self, alias: str):
        """(eq consts, const range bounds, residual local filters)."""
        eq: dict[str, Value] = {}
        ranges: list[Bound] = []
        residual: list[Expr] = []
        for conjunct in self.local[alias]:
            bound = self._as_bound(conjunct, alias, frozenset())
            if bound is None:
                residual.append(conjunct)
            elif bound.op == "=" and isinstance(bound.expr, Const):
                if bound.column in eq and eq[bound.column] != bound.expr.value:
                    # contradictory equality constants (e.g. a vacuous
                    # self::t over a text node): keep the conjunct as a
                    # filter so the contradiction is enforced
                    residual.append(conjunct)
                else:
                    eq[bound.column] = bound.expr.value
            elif isinstance(bound.expr, Const) and bound.op in ("<", "<=", ">", ">="):
                ranges.append(bound)
            else:  # '!=' and other non-sargable shapes: post-filter
                residual.append(conjunct)
        return eq, ranges, residual

    def _as_bound(
        self, conjunct: Expr, alias: str, planned: frozenset[str]
    ) -> Bound | None:
        """Interpret a conjunct as a bound on a bare column of ``alias``
        by an expression over ``planned`` aliases (or constants)."""
        if not isinstance(conjunct, Comparison):
            return None
        for this, other, op in (
            (conjunct.left, conjunct.right, conjunct.op),
            (conjunct.right, conjunct.left, MIRRORED[conjunct.op]),
        ):
            if not isinstance(this, ColRef):
                continue
            split = _split_qualified(this.name)
            if split is None or split[0] != alias:
                continue
            if _aliases_of(other) <= planned:
                return Bound(op, split[1], other, conjunct)
        return None

    def base_cardinality(self, alias: str) -> float:
        eq, ranges, _ = self.local_shape(alias)
        stats = self.stats
        if "name" in eq and "kind" in eq:
            card = stats.name_kind_cardinality(eq["name"], eq["kind"])
        elif "name" in eq:
            card = stats.eq_cardinality("name", eq["name"])
        elif "kind" in eq:
            card = stats.eq_cardinality("kind", eq["kind"])
        else:
            card = float(stats.row_count)
        for bound in ranges:
            if bound.column == "data" and isinstance(bound.expr, Const):
                card *= stats.data_range_fraction(bound.op, bound.expr.value)
            elif bound.column == "value":
                card *= 1.0 / max(stats.value_distinct, 1)
        if "value" in eq or "data" in eq:
            card *= 1.0 / max(stats.value_distinct, 1)
        if "pre" in eq:
            card = min(card, 1.0)
        return max(card, 0.001)

    # -- greedy ordering ----------------------------------------------------

    def run(self) -> None:
        remaining = set(self.aliases)
        while remaining:
            if not self.planned:
                choice = min(remaining, key=self.base_cardinality)
                self._plan_leaf(choice)
            else:
                choice = self._cheapest_extension(remaining)
                if choice is None:
                    choice = min(remaining, key=self.base_cardinality)
                self._plan_extension(choice)
            remaining.discard(choice)
        self._apply_leftover_filters()
        self._mark_early_out()

    def _cheapest_extension(self, remaining: set[str]) -> str | None:
        planned = frozenset(self.planned)
        best: str | None = None
        best_cost = float("inf")
        sample = self._binding_sample() if self.planner.mode == "sampling" else None
        for alias in sorted(remaining):  # deterministic tie-breaking
            bounds = self._available_bounds(alias, planned)
            if not bounds:
                continue
            if sample is not None:
                cost = self._measured_cost(alias, bounds, sample)
            else:
                cost = self._extension_cost(alias, bounds)
            if cost < best_cost:
                best, best_cost = alias, cost
        return best

    # -- sampling mode (ROX-style zero-investment measurement) ----------

    def _binding_sample(self) -> list[dict]:
        """Up to ``sample_size`` bindings off the current intermediate
        result (re-enumerated; plans are generators, so this costs one
        bounded pipeline run)."""
        import itertools

        if self.plan_ops is None:
            return []
        return list(
            itertools.islice(self.plan_ops.rows(), self.planner.sample_size)
        )

    def _measured_cost(
        self, alias: str, bounds: list[Bound], sample: list[dict]
    ) -> float:
        """Average measured fan-out of the candidate continuation over
        the sample, scaled by the running cardinality estimate; falls
        back to the statistics estimate on an empty sample."""
        if not sample:
            return self._extension_cost(alias, bounds)
        eq, local_ranges, local_residual = self.local_shape(alias)
        try:
            probe, _, _ = self._build_probe(
                alias, bounds, eq, local_ranges, local_residual
            )
        except PlanError:
            return self._extension_cost(alias, bounds)
        matches = 0
        for binding in sample:
            for _ in probe.matches(binding):
                matches += 1
        fanout = matches / len(sample)
        return self.cardinality * max(fanout, 0.001)

    def _available_bounds(self, alias: str, planned: frozenset[str]) -> list[Bound]:
        return self._newly_available(alias, planned)[0]

    def _newly_available(
        self, alias: str, planned: frozenset[str]
    ) -> tuple[list[Bound], list[Expr]]:
        """Unconsumed cross conjuncts that become fully evaluable once
        ``alias`` joins the planned set: index-usable bounds plus the
        residual conjuncts that must be filtered *at this step* (e.g.
        ``x.pre <= y.pre + y.size`` whose alias side is an arithmetic
        expression)."""
        bounds: list[Bound] = []
        residual: list[Expr] = []
        for conjunct in self.cross:
            if id(conjunct) in self.consumed:
                continue
            involved = _aliases_of(conjunct)
            if alias not in involved or not (involved - {alias}) <= planned:
                continue
            bound = self._as_bound(conjunct, alias, planned)
            if bound is not None:
                bounds.append(bound)
            else:
                residual.append(conjunct)
        return bounds, residual

    def _extension_cost(self, alias: str, bounds: list[Bound]) -> float:
        """Estimated cardinality after joining ``alias`` in.

        Structural (pre-range) bounds are weighted by the *source*
        alias's expected subtree fraction: containment inside the
        document root constrains nothing, containment inside a named
        element constrains a lot, and one-sided bounds (axis reversal,
        following/preceding) cut the space roughly in half.
        """
        base = self.base_cardinality(alias)
        stats = self.stats
        per_outer = base
        pre_bounds = [b for b in bounds if b.column == "pre"]
        if any(b.op == "=" for b in pre_bounds):
            per_outer = 1.0
        elif pre_bounds:
            lower = any(b.op in (">", ">=") for b in pre_bounds)
            upper = any(b.op in ("<", "<=") for b in pre_bounds)
            if lower and upper:
                fractions = [
                    self._source_fraction(a)
                    for b in pre_bounds
                    for a in _aliases_of(b.expr)
                ]
                fraction = min(fractions, default=0.5)
            else:
                fraction = 0.5
            per_outer = max(base * fraction, 0.05)
        elif any(b.column in ("value", "data") and b.op == "=" for b in bounds):
            per_outer = base / max(stats.value_distinct, 1)
        return self.cardinality * max(per_outer, 0.001)

    def _source_fraction(self, alias: str) -> float:
        """Expected fraction of the table inside ``alias``'s subtree."""
        for step in self.steps:
            if step.alias != alias:
                continue
            if step.node_test.get("kind") == 0:  # document node
                return 1.0
            if "name" in step.node_test:
                fanout = self.stats.join_fanout()
                return min(1.0, fanout / max(self.stats.row_count, 1))
            return 0.5
        return 0.5

    # -- plan construction ---------------------------------------------------

    def _plan_leaf(self, alias: str) -> None:
        eq, ranges, residual = self.local_shape(alias)
        range_bound = ranges[0] if ranges else None
        index = self.catalog.best_for(
            set(eq), range_bound.column if range_bound else None
        )
        post = [compile_expr(c, self.table) for c in residual]
        op: PhysicalOp
        if index is None:
            all_local = [compile_expr(c, self.table) for c in self.local[alias]]
            op = TbScan(self.table, alias, all_local)
            used_index = None
        else:
            range_name = range_bound.column if range_bound else None
            coverage = index.prefix_coverage(set(eq), range_name) or 0
            covered = index.key[:coverage]
            eq_used = {c: eq[c] for c in covered if c in eq}
            leftover_eq = [
                compile_expr(
                    Comparison("=", ColRef(f"{alias}.{c}"), Const(v)),
                    self.table,
                )
                for c, v in eq.items()
                if c not in eq_used
            ]
            # a range column behind the prefix is still served by the
            # index (in-group filter); only a missing column falls back
            use_range = (
                range_bound is not None
                and index.prefix_coverage(set(eq_used), range_bound.column)
                is not None
            )
            extra_ranges = [
                compile_expr(b.source, self.table)
                for b in ranges
                if not (use_range and b is range_bound)
            ]
            low = high = None
            low_inc = high_inc = True
            if use_range and isinstance(range_bound.expr, Const):
                if range_bound.op in (">", ">="):
                    low = range_bound.expr.value
                    low_inc = range_bound.op == ">="
                elif range_bound.op in ("<", "<="):
                    high = range_bound.expr.value
                    high_inc = range_bound.op == "<="
                elif range_bound.op == "=":
                    low = high = range_bound.expr.value
            op = IxScan(
                index,
                alias,
                eq_used,
                range_bound.column if use_range else None,
                low,
                high,
                low_inc,
                high_inc,
                postfilter=leftover_eq + extra_ranges + post,
            )
            used_index = index.name
        self.plan_ops = op
        self.planned.append(alias)
        self.cardinality = self.base_cardinality(alias)
        self.steps.append(
            StepInfo(
                alias=alias,
                kind="leaf",
                index=used_index,
                node_test=dict(eq),
                range_col=range_bound.column if range_bound else None,
                bounds=list(ranges),
                estimated_cardinality=self.cardinality,
                all_refs=frozenset((alias,)),
            )
        )

    def _plan_extension(self, alias: str) -> None:
        planned = frozenset(self.planned)
        bounds, cross_residual = self._newly_available(alias, planned)
        eq, local_ranges, local_residual = self.local_shape(alias)
        for conjunct in cross_residual:
            self.consumed.add(id(conjunct))

        value_eqs = [
            b for b in bounds if b.column in ("value", "data") and b.op == "="
        ]
        structural = [b for b in bounds if b.column == "pre"]
        use_hash = (
            bool(value_eqs)
            and not structural
            and self.cardinality > self.base_cardinality(alias)
        )
        if use_hash:
            self._plan_hash_join(
                alias, value_eqs, bounds, eq, local_ranges,
                local_residual, cross_residual,
            )
            return
        self._plan_nl_join(
            alias, bounds, eq, local_ranges, local_residual + cross_residual
        )

    def _choose_range_col(self, bounds: list[Bound], eq: dict[str, Value]):
        """Pick the probe's range column and the index serving it."""
        priorities = ["pre", "value", "data", "level", "size"]
        by_col: dict[str, list[Bound]] = {}
        for bound in bounds:
            by_col.setdefault(bound.column, []).append(bound)
        for column in priorities:
            if column not in by_col:
                continue
            index = self.catalog.best_for(set(eq), column)
            if index is not None:
                return column, by_col[column], index
        index = self.catalog.best_for(set(eq), None)
        return None, [], index

    def _build_probe(
        self,
        alias: str,
        bounds: list[Bound],
        eq: dict[str, Value],
        local_ranges: list[Bound],
        local_residual: list[Expr],
    ) -> tuple[Probe, "BTreeIndex", str | None]:
        """Construct the index continuation for joining ``alias`` in,
        given the bounds available from the planned set.  Shared by
        actual plan construction and by the sampling cost mode."""
        range_col, range_bounds, index = self._choose_range_col(bounds, eq)
        low_fn = high_fn = None
        low_inc = high_inc = True
        used: list[Bound] = []
        if index is not None and range_col is not None:
            eq_prefix = {
                c: eq[c]
                for c in index.key[: index.prefix_coverage(set(eq), range_col) or 0]
                if c in eq
            }
            if index.prefix_coverage(set(eq_prefix), range_col) is None:
                range_col, range_bounds = None, []
        if range_col is not None:
            integer_col = range_col in ("pre", "size", "level")
            lower_fns: list = []
            upper_fns: list = []
            for bound in range_bounds:
                fn = compile_expr(bound.expr, self.table)
                if bound.op == "=":
                    if not (low_inc and high_inc):
                        continue  # mixing with exclusive bounds: post-filter
                    lower_fns.append(fn)
                    upper_fns.append(fn)
                    used.append(bound)
                elif bound.op in (">", ">=") and integer_col:
                    # normalize to inclusive: pre > x  ==  pre >= x+1
                    lower_fns.append(_shift(fn, +1) if bound.op == ">" else fn)
                    used.append(bound)
                elif bound.op in ("<", "<=") and integer_col:
                    upper_fns.append(_shift(fn, -1) if bound.op == "<" else fn)
                    used.append(bound)
                elif bound.op in (">", ">=") and not lower_fns:
                    low_inc = bound.op == ">="
                    lower_fns.append(fn)
                    used.append(bound)
                elif bound.op in ("<", "<=") and not upper_fns:
                    high_inc = bound.op == "<="
                    upper_fns.append(fn)
                    used.append(bound)
                # anything else stays in `bounds` and is post-filtered
            if lower_fns:
                low_fn = _combine(lower_fns, max)
            if upper_fns:
                high_fn = _combine(upper_fns, min)

        eq_used: dict[str, Value] = {}
        if index is not None:
            coverage = index.prefix_coverage(
                set(eq), range_col if range_col else None
            )
            covered = index.key[: coverage or 0]
            eq_used = {c: eq[c] for c in covered if c in eq}

        post_exprs: list[Expr] = []
        post_exprs += [
            Comparison("=", ColRef(f"{alias}.{c}"), Const(v))
            for c, v in eq.items()
            if c not in eq_used
        ]
        post_exprs += [b.source for b in bounds if b not in used]
        post_exprs += [b.source for b in local_ranges]
        post_exprs += local_residual
        post = [compile_expr(e, self.table) for e in post_exprs]

        if index is None:
            # no eligible index (node() test, no usable bound): fall
            # back to a full index sweep per outer binding — the
            # physical equivalent of a nested table scan.
            index = next(iter(self.catalog), None)
            if index is None:
                raise PlanError("no index nor table scan path for probe")
            range_col = None
            low_fn = high_fn = None
            used = []
        probe = Probe(
            index,
            alias,
            eq_used,
            range_col,
            low_fn,
            high_fn,
            low_inc,
            high_inc,
            post,
        )
        return probe, index, range_col

    def _plan_nl_join(
        self,
        alias: str,
        bounds: list[Bound],
        eq: dict[str, Value],
        local_ranges: list[Bound],
        local_residual: list[Expr],
    ) -> None:
        probe, index, range_col = self._build_probe(
            alias, bounds, eq, local_ranges, local_residual
        )
        assert self.plan_ops is not None
        self.plan_ops = NLJoin(self.plan_ops, probe)
        for bound in bounds:
            self.consumed.add(id(bound.source))
        self.planned.append(alias)
        self.cardinality = self._extension_cost(alias, bounds)
        post_exprs: list[Expr] = (
            [b.source for b in bounds]
            + [b.source for b in local_ranges]
            + local_residual
        )
        self.steps.append(
            StepInfo(
                alias=alias,
                kind="nljoin" if bounds else "cross",
                index=index.name,
                node_test=dict(eq),
                range_col=range_col,
                bounds=bounds,
                bound_sources=frozenset(
                    a for b in bounds for a in _aliases_of(b.expr)
                ),
                estimated_cardinality=self.cardinality,
                all_refs=frozenset(
                    a for e in post_exprs for a in _aliases_of(e)
                )
                | frozenset(a for b in bounds for a in _aliases_of(b.expr))
                | {alias},
            )
        )

    def _plan_hash_join(
        self,
        alias: str,
        value_eqs: list[Bound],
        bounds: list[Bound],
        eq: dict[str, Value],
        local_ranges: list[Bound],
        local_residual: list[Expr],
        cross_residual: list[Expr],
    ) -> None:
        key = value_eqs[0]
        build = self._leaf_op(alias, eq, local_ranges, local_residual)
        build_key = compile_expr(ColRef(f"{alias}.{key.column}"), self.table)
        probe_key = compile_expr(key.expr, self.table)
        post = [
            compile_expr(b.source, self.table)
            for b in bounds
            if b is not key
        ]
        post += [compile_expr(c, self.table) for c in cross_residual]
        assert self.plan_ops is not None
        self.plan_ops = HsJoin(self.plan_ops, build, probe_key, build_key, post)
        for bound in bounds:
            self.consumed.add(id(bound.source))
        self.planned.append(alias)
        self.cardinality = self._extension_cost(alias, bounds)
        self.steps.append(
            StepInfo(
                alias=alias,
                kind="hsjoin",
                index=self.steps_index_of(build),
                node_test=dict(eq),
                range_col=key.column,
                bounds=bounds,
                bound_sources=frozenset(
                    a for b in bounds for a in _aliases_of(b.expr)
                ),
                estimated_cardinality=self.cardinality,
                all_refs=frozenset(
                    a for b in bounds for a in _aliases_of(b.source)
                )
                | {alias},
            )
        )

    @staticmethod
    def steps_index_of(op: PhysicalOp) -> str | None:
        if isinstance(op, IxScan):
            return op.index.name
        return None

    def _leaf_op(
        self,
        alias: str,
        eq: dict[str, Value],
        ranges: list[Bound],
        residual: list[Expr],
    ) -> PhysicalOp:
        index = self.catalog.best_for(set(eq), None)
        post_exprs = [b.source for b in ranges] + residual
        if index is None:
            all_preds = [
                compile_expr(c, self.table) for c in self.local[alias]
            ]
            return TbScan(self.table, alias, all_preds)
        coverage = index.prefix_coverage(set(eq), None) or 0
        covered = index.key[:coverage]
        eq_used = {c: eq[c] for c in covered if c in eq}
        post_exprs += [
            Comparison("=", ColRef(f"{alias}.{c}"), Const(v))
            for c, v in eq.items()
            if c not in eq_used
        ]
        return IxScan(
            index,
            alias,
            eq_used,
            postfilter=[compile_expr(e, self.table) for e in post_exprs],
        )

    # -- finishing touches ---------------------------------------------------

    def _apply_leftover_filters(self) -> None:
        leftover = [
            compile_expr(c, self.table)
            for c in self.cross
            if id(c) not in self.consumed
        ]
        # cross conjuncts not consumed as probe bounds were already
        # added as probe post-filters when their last alias joined —
        # except ones skipped entirely (e.g. Or-predicates): guard here.
        applied = {id(c) for c in self.cross if id(c) in self.consumed}
        pending = [
            c for c in self.cross if id(c) not in applied
        ]
        if pending and self.plan_ops is not None:
            self.plan_ops = FilterOp(
                self.plan_ops, [compile_expr(c, self.table) for c in pending]
            )
        del leftover

    def _mark_early_out(self) -> None:
        """Semi-join detection: an NLJOIN whose inner alias feeds
        neither the output nor any later step may stop at the first
        match per outer binding (Fig. 10's early-out flag on the bidder
        leg).  Only sound when a tail duplicate elimination erases
        multiplicities, so skipped for DISTINCT-free plans."""
        if self.flat.distinct is None:
            return
        leftover_refs: set[str] = set()
        for conjunct in self.cross:
            if id(conjunct) not in self.consumed:
                leftover_refs |= _aliases_of(conjunct)
        # references needed above step i: output + leftover filters +
        # predicates of every later step
        for i, step in enumerate(self.steps):
            if step.kind != "nljoin":
                continue
            needed = set(self.output_refs) | leftover_refs
            for later in self.steps[i + 1 :]:
                needed |= later.all_refs
            if step.alias not in needed:
                step.early_out = True
        # transfer flags onto the physical NLJoin nodes
        flagged = {s.alias for s in self.steps if s.early_out}
        op = self.plan_ops
        while op is not None and op.children:
            if isinstance(op, NLJoin) and op.probe.alias in flagged:
                op.early_out = True
            op = op.children[0]

    def finish(self) -> PhysicalQuery:
        assert self.plan_ops is not None
        item_fn = compile_expr(self.flat.item, self.table)
        order_fns = [compile_expr(e, self.table) for e in self.flat.order]
        order_fns.append(item_fn)
        distinct_fns = None
        if self.flat.distinct is not None:
            distinct_exprs = [self.flat.item, *self.flat.distinct, *self.flat.order]
            distinct_fns = [
                compile_expr(e, self.table) for e in distinct_exprs
            ]
        sort = Sort(self.plan_ops, order_fns, distinct_fns)
        root = Return(sort, item_fn)
        return PhysicalQuery(root, self.steps, self.flat)


def _shift(fn, delta: int):
    """Wrap a bound function, shifting its integer result by delta."""

    def shifted(binding):
        value = fn(binding)
        return None if value is None else value + delta

    return shifted


def _combine(fns: list, pick):
    """Combine several bound functions with max (lower bounds) or
    min (upper bounds); None (NULL) poisons the bound."""
    if len(fns) == 1:
        return fns[0]

    def combined(binding):
        values = [fn(binding) for fn in fns]
        if any(v is None for v in values):
            return None
        return pick(values)

    return combined
