"""Plan rendering and phenomena analysis (paper Section 4.1).

:func:`explain_plan` renders physical plans in a form resembling
Figs. 10/11 — the operator tree plus continuation annotations for each
index leg.

:func:`plan_phenomena` detects the three behaviours the paper observed
DB2's optimizer "reinvent" from vanilla B-trees + join planning:

* **step reordering** — the join order deviates from the flattening
  (≈ syntactic) order of the aliases; in particular a plan may start
  in the middle of a step sequence (Q2 starts at ``closed_auction`` /
  ``price`` before any document context exists);
* **axis reversal** — a range edge evaluated against its XQuery
  direction: the structurally *contained* node is bound first and the
  plan probes for its container (descendant traded for ancestor);
* **path stitching / branching** — one bound alias serves as the
  continuation point for several subsequent index legs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.planner.joinplan import Bound, PhysicalQuery, StepInfo
from repro.planner.physical import (
    FilterOp,
    HsJoin,
    IxScan,
    NLJoin,
    PhysicalOp,
    Return,
    Sort,
    TbScan,
)
from repro.xmltree.model import NodeKind

_KIND_NAMES = {int(k): k.name for k in NodeKind}


def _node_test_text(step: StepInfo) -> str:
    name = step.node_test.get("name")
    kind = step.node_test.get("kind")
    if name is not None:
        return f"::{name}"
    if kind is not None:
        return f"::{_KIND_NAMES.get(int(kind), kind)}()"
    return "::node()"


def _edge_direction(step: StepInfo) -> str | None:
    """Classify a structural probe: 'forward' when the new alias is
    searched inside an outer subtree (lower bound ``> outer.pre``),
    'reverse' when the new alias must *contain* an outer node (upper
    bound ``< outer.pre`` with a size postfilter) — the paper's axis
    reversal."""
    if step.range_col != "pre":
        return None
    has_lower = any(b.op in (">", ">=") and b.column == "pre" for b in step.bounds)
    has_upper = any(b.op in ("<", "<=") and b.column == "pre" for b in step.bounds)
    has_eq = any(b.op == "=" and b.column == "pre" for b in step.bounds)
    if has_eq:
        return "exact"
    if has_lower:
        return "forward"
    if has_upper:
        return "reverse"
    return None


def explain_plan(plan: PhysicalQuery) -> str:
    """Render the physical operator tree with continuation notes.
    After an audited execution (:func:`repro.obs.audit_plan`), each
    operator line additionally shows the actual row count observed."""
    lines: list[str] = []

    def visit(op: PhysicalOp, depth: int) -> None:
        pad = "  " * depth
        actual = (
            f"  [rows={op.actual_rows}]" if op.actual_rows is not None else ""
        )
        lines.append(f"{pad}{op.describe()}{actual}")
        if isinstance(op, NLJoin):
            visit(op.children[0], depth + 1)
            lines.append(f"{'  ' * (depth + 1)}{op.probe.describe()}")
        else:
            for child in op.children:
                visit(child, depth + 1)

    visit(plan.root, 0)
    lines.append("")
    lines.append("continuations:")
    for i, step in enumerate(plan.steps):
        test = _node_test_text(step)
        direction = _edge_direction(step) or "-"
        origin = ",".join(sorted(step.bound_sources)) or "(leading)"
        flags = " early-out" if step.early_out else ""
        lines.append(
            f"  {i + 1}. {step.alias}{test}  via {step.index or 'scan'}"
            f"  resume-from {origin}  [{direction}]{flags}"
        )
    return "\n".join(lines)


@dataclass
class Phenomena:
    """Which XQuery-domain optimizations the relational planner
    reproduced on this query (Section 4.1)."""

    join_order: list[str]
    flattening_order: list[str]
    step_reordering: bool
    leading_node_test: str
    reversed_edges: list[str] = field(default_factory=list)
    branching_points: list[str] = field(default_factory=list)
    early_out_aliases: list[str] = field(default_factory=list)
    hash_join_aliases: list[str] = field(default_factory=list)

    @property
    def axis_reversal(self) -> bool:
        return bool(self.reversed_edges)

    @property
    def path_branching(self) -> bool:
        return bool(self.branching_points)


def audit_explain(plan: PhysicalQuery) -> str:
    """Execute ``plan`` under the estimate-vs-actual cardinality audit
    and render the annotated operator tree plus the q-error table —
    the planner half of the paper's estimate-quality question (how far
    do the classical selectivity estimates drift from observed rows)."""
    from repro.obs import audit_plan, qerror_table

    _, audits = audit_plan(plan)
    return f"{explain_plan(plan)}\n\nestimate audit:\n{qerror_table(audits)}"


def plan_phenomena(plan: PhysicalQuery) -> Phenomena:
    """Analyse a plan for step reordering, axis reversal, branching."""
    join_order = plan.join_order
    flattening_order = list(plan.flat.aliases)
    reversed_edges = [
        s.alias for s in plan.steps if _edge_direction(s) == "reverse"
    ]
    # branching: an alias that is the resume point of 2+ later legs
    resume_counts: dict[str, int] = {}
    for step in plan.steps:
        for source in step.bound_sources:
            resume_counts[source] = resume_counts.get(source, 0) + 1
    branching = [a for a, n in resume_counts.items() if n >= 2]
    leading = plan.steps[0] if plan.steps else None
    return Phenomena(
        join_order=join_order,
        flattening_order=flattening_order,
        step_reordering=join_order != flattening_order[: len(join_order)]
        and join_order != flattening_order,
        leading_node_test=_node_test_text(leading) if leading else "",
        reversed_edges=reversed_edges,
        branching_points=branching,
        early_out_aliases=[s.alias for s in plan.steps if s.early_out],
        hash_join_aliases=[s.alias for s in plan.steps if s.kind == "hsjoin"],
    )
