"""Physical plan operators (paper Table 7) and their executor.

A physical row is a *binding*: a dict from join-graph alias (``d3``) to
the bound ``pre`` rank.  Operators are generators of bindings; leaf
scans introduce one alias, joins extend bindings with further aliases.

=========  ====================================================
operator   semantics
=========  ====================================================
RETURN     result row delivery (item extraction)
SORT       sort rows, optionally with duplicate elimination
NLJOIN     index nested-loop join (inner re-scanned per outer
           binding; ``early_out`` makes it a semi-join filter)
HSJOIN     hash join (right leg: build, left leg: probe)
IXSCAN     B-tree scan: equality prefix + one range component,
           residual conditions as post-filter
TBSCAN     table scan with filter
=========  ====================================================
"""

from __future__ import annotations

import re
from typing import Callable, Iterable, Iterator

from repro.algebra.expressions import (
    And,
    ColRef,
    Comparison,
    Const,
    Expr,
    In,
    Or,
    Plus,
    Value,
)
from repro.errors import PlanError
from repro.infoset.encoding import DocTable
from repro.planner.indexes import BTreeIndex

_QUALIFIED = re.compile(r"^(d\d+)\.(\w+)$")

Binding = dict[str, int]
BoundFn = Callable[[Binding], Value]


def compile_expr(expr: Expr, table: DocTable) -> BoundFn:
    """Compile an expression over qualified columns into a closure
    evaluating against a binding."""
    if isinstance(expr, Const):
        value = expr.value
        return lambda binding: value
    if isinstance(expr, ColRef):
        m = _QUALIFIED.match(expr.name)
        if not m:
            raise PlanError(f"unqualified column {expr.name!r} in physical plan")
        alias, column = m.group(1), m.group(2)
        getter = _column_getter(table, column)
        return lambda binding: getter(binding[alias])
    if isinstance(expr, Plus):
        left = compile_expr(expr.left, table)
        right = compile_expr(expr.right, table)

        def add(binding: Binding) -> Value:
            a, b = left(binding), right(binding)
            if a is None or b is None:
                return None
            return a + b  # type: ignore[operator]

        return add
    if isinstance(expr, Comparison):
        from repro.algebra.expressions import COMPARISONS

        test = COMPARISONS[expr.op][0]
        left = compile_expr(expr.left, table)
        right = compile_expr(expr.right, table)

        def compare(binding: Binding) -> bool:
            a, b = left(binding), right(binding)
            if a is None or b is None:
                return False
            return test(a, b)

        return compare
    if isinstance(expr, And):
        parts = [compile_expr(p, table) for p in expr.parts]
        return lambda binding: all(p(binding) for p in parts)
    if isinstance(expr, Or):
        parts = [compile_expr(p, table) for p in expr.parts]
        return lambda binding: any(p(binding) for p in parts)
    if isinstance(expr, In):
        member = compile_expr(expr.expr, table)
        values = frozenset(v for v in expr.values if v is not None)
        return lambda binding: member(binding) in values
    raise PlanError(f"cannot compile {type(expr).__name__}")


def _column_getter(table: DocTable, column: str):
    if column == "pre":
        return lambda pre: pre
    data = getattr(table, column)
    return lambda pre: data[pre]


class PhysicalOp:
    """Base class: a generator of bindings with an explainable shape."""

    #: operator name as printed in explain output
    op_name = "OP"

    def __init__(self, children: Iterable["PhysicalOp"] = ()):
        self.children = list(children)
        self.annotation = ""
        #: rows this operator produced during an audited execution
        #: (set by :func:`repro.obs.audit.audit_plan`; ``None`` until
        #: the plan has been executed under the cardinality audit)
        self.actual_rows: int | None = None

    def rows(self) -> Iterator[Binding]:
        raise NotImplementedError

    def describe(self) -> str:
        return self.op_name


class IxScan(PhysicalOp):
    """Leaf B-tree scan introducing one alias."""

    op_name = "IXSCAN"

    def __init__(
        self,
        index: BTreeIndex,
        alias: str,
        equals: dict[str, Value],
        range_col: str | None = None,
        low: Value = None,
        high: Value = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
        postfilter: list[BoundFn] | None = None,
    ):
        super().__init__()
        self.index = index
        self.alias = alias
        self.equals = equals
        self.range_col = range_col
        self.low, self.high = low, high
        self.low_inclusive, self.high_inclusive = low_inclusive, high_inclusive
        self.postfilter = postfilter or []

    def rows(self) -> Iterator[Binding]:
        for pre in self.index.scan(
            self.equals,
            self.range_col,
            self.low,
            self.high,
            self.low_inclusive,
            self.high_inclusive,
        ):
            binding = {self.alias: pre}
            if all(f(binding) for f in self.postfilter):
                yield binding

    def describe(self) -> str:
        eq = ",".join(f"{c}={v!r}" for c, v in self.equals.items())
        parts = [f"IXSCAN {self.index.name}({self.alias}"]
        if eq:
            parts.append(f"; {eq}")
        if self.range_col:
            parts.append(f"; {self.range_col} range")
        return "".join(parts) + ")"


class TbScan(PhysicalOp):
    """Full table scan introducing one alias."""

    op_name = "TBSCAN"

    def __init__(self, table: DocTable, alias: str, postfilter: list[BoundFn] | None = None):
        super().__init__()
        self.table = table
        self.alias = alias
        self.postfilter = postfilter or []

    def rows(self) -> Iterator[Binding]:
        for pre in range(len(self.table)):
            binding = {self.alias: pre}
            if all(f(binding) for f in self.postfilter):
                yield binding

    def describe(self) -> str:
        return f"TBSCAN doc({self.alias})"


class Probe:
    """A parameterized index lookup for NLJOIN inner legs: the range
    bounds are functions of the outer binding (the *continuation* being
    resumed, in the paper's Section 4.1 terminology)."""

    def __init__(
        self,
        index: BTreeIndex,
        alias: str,
        equals: dict[str, Value],
        range_col: str | None,
        low_fn: BoundFn | None,
        high_fn: BoundFn | None,
        low_inclusive: bool,
        high_inclusive: bool,
        postfilter: list[BoundFn],
    ):
        self.index = index
        self.alias = alias
        self.equals = equals
        self.range_col = range_col
        self.low_fn, self.high_fn = low_fn, high_fn
        self.low_inclusive, self.high_inclusive = low_inclusive, high_inclusive
        self.postfilter = postfilter

    def matches(self, outer: Binding) -> Iterator[Binding]:
        low = self.low_fn(outer) if self.low_fn else None
        high = self.high_fn(outer) if self.high_fn else None
        if (self.low_fn and low is None) or (self.high_fn and high is None):
            return
        for pre in self.index.scan(
            self.equals,
            self.range_col,
            low,
            high,
            self.low_inclusive,
            self.high_inclusive,
        ):
            binding = dict(outer)
            binding[self.alias] = pre
            if all(f(binding) for f in self.postfilter):
                yield binding

    def describe(self) -> str:
        eq = ",".join(f"{c}={v!r}" for c, v in self.equals.items())
        text = f"IXSCAN {self.index.name}({self.alias}"
        if eq:
            text += f"; {eq}"
        if self.range_col:
            text += f"; {self.range_col} bound by outer"
        return text + ")"


class NLJoin(PhysicalOp):
    """Index nested-loop join: left leg outer, right leg a probe."""

    op_name = "NLJOIN"

    def __init__(self, outer: PhysicalOp, probe: Probe, early_out: bool = False):
        super().__init__([outer])
        self.probe = probe
        self.early_out = early_out

    def rows(self) -> Iterator[Binding]:
        for outer_binding in self.children[0].rows():
            if self.early_out:
                for _ in self.probe.matches(outer_binding):
                    yield outer_binding
                    break
            else:
                yield from self.probe.matches(outer_binding)

    def describe(self) -> str:
        flag = " (early-out)" if self.early_out else ""
        return f"NLJOIN{flag}"


class HsJoin(PhysicalOp):
    """Hash join: right leg builds, left leg probes (Table 7)."""

    op_name = "HSJOIN"

    def __init__(
        self,
        probe_side: PhysicalOp,
        build_side: PhysicalOp,
        probe_key: BoundFn,
        build_key: BoundFn,
        postfilter: list[BoundFn] | None = None,
    ):
        super().__init__([probe_side, build_side])
        self.probe_key = probe_key
        self.build_key = build_key
        self.postfilter = postfilter or []

    def rows(self) -> Iterator[Binding]:
        buckets: dict[Value, list[Binding]] = {}
        for binding in self.children[1].rows():
            key = self.build_key(binding)
            if key is not None:
                buckets.setdefault(key, []).append(binding)
        for probe_binding in self.children[0].rows():
            key = self.probe_key(probe_binding)
            for build_binding in buckets.get(key, ()):
                combined = dict(probe_binding)
                combined.update(build_binding)
                if all(f(combined) for f in self.postfilter):
                    yield combined


class FilterOp(PhysicalOp):
    """Residual predicate application."""

    op_name = "FILTER"

    def __init__(self, child: PhysicalOp, preds: list[BoundFn]):
        super().__init__([child])
        self.preds = preds

    def rows(self) -> Iterator[Binding]:
        for binding in self.children[0].rows():
            if all(p(binding) for p in self.preds):
                yield binding


class Sort(PhysicalOp):
    """Sort (+ optional duplicate elimination over the given key)."""

    op_name = "SORT"

    def __init__(
        self,
        child: PhysicalOp,
        order_fns: list[BoundFn],
        distinct_fns: list[BoundFn] | None,
    ):
        super().__init__([child])
        self.order_fns = order_fns
        self.distinct_fns = distinct_fns

    def rows(self) -> Iterator[Binding]:
        materialized = list(self.children[0].rows())
        if self.distinct_fns is not None:
            seen: set[tuple] = set()
            unique: list[Binding] = []
            for binding in materialized:
                key = tuple(f(binding) for f in self.distinct_fns)
                if key not in seen:
                    seen.add(key)
                    unique.append(binding)
            materialized = unique
        materialized.sort(
            key=lambda b: tuple(_null_first(f(b)) for f in self.order_fns)
        )
        yield from materialized

    def describe(self) -> str:
        dup = " (dup. elim.)" if self.distinct_fns is not None else ""
        return f"SORT{dup}"


class Return(PhysicalOp):
    """Plan root: extracts the item value from each binding."""

    op_name = "RETURN"

    def __init__(self, child: PhysicalOp, item_fn: BoundFn):
        super().__init__([child])
        self.item_fn = item_fn

    def rows(self) -> Iterator[Binding]:  # pragma: no cover - not used
        yield from self.children[0].rows()

    def items(self) -> list[Value]:
        return [self.item_fn(b) for b in self.children[0].rows()]


def _null_first(value: Value) -> tuple:
    if value is None:
        return (0, 0)
    return (1, value)
