"""The join graph isolation rewrite rules (paper Fig. 5, rules (1)–(19)).

Each rule is a function ``rule(node, ctx) -> Operator | None`` returning
the replacement for ``node`` when the rule's premise (checked against
the inferred plan properties) holds, else ``None``.

Soundness notes that go beyond the paper's terse presentation:

* The rank rules (9)–(13) preserve rank columns only *ordinally*
  (order-isomorphic values).  This is sufficient because the compiler
  never emits value comparisons over rank columns — ranks are consumed
  exclusively as ordering criteria and by the serialization point.
* Rule (11) widens the schema below the pulled-up rank by the order
  columns.  Duplicate elimination above is unaffected: RANK ties are
  exactly equality of the order columns, so distinct-on-(rank, rest)
  equals distinct-on-(rank, order, rest).
* Rule (17) through a renaming projection and rule (19) on "identical
  inputs" take DAG sharing seriously: (19) collapses a key equi-join
  whose two inputs are projection chains over the *same shared node*
  joining a key column with a copy of itself.
* Rule (18) carries the paper's footnote-5 size guard against the
  ping-pong of adjacent equi-joins.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.dagutils import all_nodes, parents_map
from repro.algebra.expressions import Comparison, col, conjuncts
from repro.algebra.ops import (
    Attach,
    Cross,
    Distinct,
    DocScan,
    Join,
    LitTable,
    Operator,
    Project,
    RowId,
    RowRank,
    Select,
    Serialize,
)
from repro.algebra.properties import PlanProperties


@dataclass
class RewriteContext:
    """Inferred properties plus bookkeeping shared by all rules.

    ``counter`` must be shared across all steps of one isolation run
    (the engine owns it): fresh column names persist in the plan, so a
    per-step counter would mint clashing names.
    """

    root: Operator
    props: PlanProperties
    parents: dict[int, list[Operator]]
    counter: list[int] = field(default_factory=lambda: [0])

    def fresh_col(self, base: str) -> str:
        self.counter[0] += 1
        return f"{base}_r{self.counter[0]}"

    def subplan_size(self, node: Operator) -> int:
        return len(all_nodes(node))


# ---------------------------------------------------------------------------
# house-cleaning rules
# ---------------------------------------------------------------------------


def rule_1_cross_literal(node: Operator, ctx: RewriteContext) -> Operator | None:
    """(1) ``q × single-row-literal -> chained @`` (either operand)."""
    if not isinstance(node, Cross):
        return None
    for lit_side, other in ((node.left, node.right), (node.right, node.left)):
        if isinstance(lit_side, LitTable):
            if len(lit_side.rows) == 1:
                out: Operator = other
                for name, value in zip(lit_side.names, lit_side.rows[0]):
                    out = Attach(out, name, value)
                return out
            if not lit_side.rows:
                return LitTable(node.columns, [])
    return None


def rule_2_merge_projects(node: Operator, ctx: RewriteContext) -> Operator | None:
    """(2) ``π(π(q)) -> π(q)`` — compose renamings."""
    if isinstance(node, Project) and isinstance(node.child, Project):
        inner = node.child.renaming
        if any(old not in inner for _, old in node.cols):
            return None  # dangling pair; rule (7b) prunes it first
        merged = [(new, inner[old]) for new, old in node.cols]
        return Project(node.child.child, merged)
    return None


def rule_7b_drop_dangling_pairs(node: Operator, ctx: RewriteContext) -> Operator | None:
    """(7b) drop projection pairs whose source column no longer exists.

    Rules (4)–(6) remove generated columns once ``icols`` shows no live
    consumer; a *dead* projection output (one nobody upstream needs) may
    still reference such a column.  Dropping the dead pair restores the
    structural invariant.
    """
    if not isinstance(node, Project):
        return None
    available = set(node.child.columns)
    kept = [(new, old) for new, old in node.cols if old in available]
    if len(kept) == len(node.cols) or not kept:
        return None
    return Project(node.child, kept)


def rule_2b_identity_project(node: Operator, ctx: RewriteContext) -> Operator | None:
    """π that keeps all columns under their own names is a no-op."""
    if (
        isinstance(node, Project)
        and all(new == old for new, old in node.cols)
        and node.columns == node.child.columns
    ):
        return node.child
    return None


def rule_3_const_join_to_cross(node: Operator, ctx: RewriteContext) -> Operator | None:
    """(3) ``q1 ⋈a=b q2 -> q1 × q2`` when a and b carry the same constant."""
    if not isinstance(node, Join):
        return None
    eq = node.equijoin_cols()
    if eq is None:
        return None
    a, b = eq
    const = ctx.props.const(node)
    if a in const and b in const and const[a] == const[b] and const[a] is not None:
        return Cross(node.left, node.right)
    return None


def rule_4_attach_unreferenced(node: Operator, ctx: RewriteContext) -> Operator | None:
    """(4) ``@a:c(q) -> q`` when a is not needed upstream."""
    if isinstance(node, Attach) and node.col not in ctx.props.icols(node):
        return node.child
    return None


def rule_5_rank_unreferenced(node: Operator, ctx: RewriteContext) -> Operator | None:
    """(5) ``%a(q) -> q`` when a is not needed upstream."""
    if isinstance(node, RowRank) and node.col not in ctx.props.icols(node):
        return node.child
    return None


def rule_6_rowid_unreferenced(node: Operator, ctx: RewriteContext) -> Operator | None:
    """(6) ``#a(q) -> q`` when a is not needed upstream."""
    if isinstance(node, RowId) and node.col not in ctx.props.icols(node):
        return node.child
    return None


def rule_7_project_restrict(node: Operator, ctx: RewriteContext) -> Operator | None:
    """(7) restrict a projection to the needed columns."""
    if not isinstance(node, Project):
        return None
    icols = ctx.props.icols(node)
    if not icols:
        return None
    outputs = set(node.columns)
    if not (outputs - icols):
        return None
    kept = [(new, old) for new, old in node.cols if new in icols]
    if not kept:
        return None
    return Project(node.child, kept)


def rule_8_rank_drop_const_order(node: Operator, ctx: RewriteContext) -> Operator | None:
    """(8) drop constant columns from ranking criteria; a rank over
    nothing but constants assigns rank 1 to every row."""
    if not isinstance(node, RowRank):
        return None
    const = ctx.props.const_cols(node.child)
    if not (set(node.order) & const):
        return None
    remaining = tuple(c for c in node.order if c not in const)
    if not remaining:
        return Attach(node.child, node.col, 1)
    return RowRank(node.child, node.col, remaining)


# ---------------------------------------------------------------------------
# goal ρ: a single row-rank operator in the plan tail
# ---------------------------------------------------------------------------


def rule_9_rank_single_to_project(node: Operator, ctx: RewriteContext) -> Operator | None:
    """(9) ``%a:<b>(q) -> π(a:b, cols(q))(q)`` — a single-column rank is
    order-isomorphic to the column itself."""
    if isinstance(node, RowRank) and len(node.order) == 1:
        pairs = [(c, c) for c in node.child.columns]
        pairs.append((node.col, node.order[0]))
        return Project(node.child, pairs)
    return None


def rule_10_rank_pullup_unary(node: Operator, ctx: RewriteContext) -> Operator | None:
    """(10) pull % above σ, δ, @, # (premise: rank column unused there)."""
    child = node.children[0] if node.children else None
    if not isinstance(child, RowRank):
        return None
    if isinstance(node, Select):
        if child.col in node.pred.cols():
            return None
        inner: Operator = Select(child.child, node.pred)
    elif isinstance(node, Distinct):
        inner = Distinct(child.child)
    elif isinstance(node, Attach):
        inner = Attach(child.child, node.col, node.value)
    elif isinstance(node, RowId):
        inner = RowId(child.child, node.col)
    else:
        return None
    return RowRank(inner, child.col, child.order)


def rule_11_rank_pullup_project(node: Operator, ctx: RewriteContext) -> Operator | None:
    """(11) pull % above π, re-routing the order columns below under
    fresh names (schema widening is benign, see module docstring)."""
    if not isinstance(node, Project):
        return None
    rank = node.child
    if not isinstance(rank, RowRank):
        return None
    rank_refs = [(new, old) for new, old in node.cols if old == rank.col]
    if len(rank_refs) != 1:
        return None  # rank column dropped (rule 5 first) or duplicated
    rank_new = rank_refs[0][0]
    inner_pairs = [(new, old) for new, old in node.cols if old != rank.col]
    fresh_order = []
    for b in rank.order:
        fresh = ctx.fresh_col(b)
        inner_pairs.append((fresh, b))
        fresh_order.append(fresh)
    inner = Project(rank.child, inner_pairs)
    return RowRank(inner, rank_new, tuple(fresh_order))


def rule_12_rank_pullup_join(node: Operator, ctx: RewriteContext) -> Operator | None:
    """(12) pull % above ⋈ / × (premise: rank column not in the
    join predicate)."""
    if not isinstance(node, (Join, Cross)):
        return None
    pred_cols = node.pred.cols() if isinstance(node, Join) else frozenset()
    for side in (0, 1):
        rank = node.children[side]
        if not isinstance(rank, RowRank) or rank.col in pred_cols:
            continue
        other = node.children[1 - side]
        operands = [rank.child, other] if side == 0 else [other, rank.child]
        if isinstance(node, Join):
            inner: Operator = Join(operands[0], operands[1], node.pred)
        else:
            inner = Cross(operands[0], operands[1])
        return RowRank(inner, rank.col, rank.order)
    return None


def rule_13_rank_splice(node: Operator, ctx: RewriteContext) -> Operator | None:
    """(13) splice adjacent rank criteria: an order column that is
    itself a rank is replaced by that rank's own criteria."""
    if not isinstance(node, RowRank):
        return None
    inner = node.child
    if not isinstance(inner, RowRank) or inner.col not in node.order:
        return None
    new_order: list[str] = []
    for c in node.order:
        if c == inner.col:
            new_order.extend(inner.order)
        else:
            new_order.append(c)
    return RowRank(inner, node.col, tuple(new_order))


# ---------------------------------------------------------------------------
# goal δ + join push-down and removal
# ---------------------------------------------------------------------------


def rule_14_distinct_redundant(node: Operator, ctx: RewriteContext) -> Operator | None:
    """(14) ``δ(q) -> q`` when the output is deduplicated upstream anyway."""
    if isinstance(node, Distinct) and ctx.props.set_prop(node):
        return node.child
    return None


def rule_15_distinct_drop_const(node: Operator, ctx: RewriteContext) -> Operator | None:
    """(15) project away constant, unneeded columns below a δ."""
    if not isinstance(node, Distinct):
        return None
    drop = ctx.props.const_cols(node) - ctx.props.icols(node)
    if not drop:
        return None
    kept = [c for c in node.child.columns if c not in drop]
    if not kept:
        return None
    return Distinct(Project.keep(node.child, kept))


def rule_16_introduce_tail_distinct(node: Operator, ctx: RewriteContext) -> Operator | None:
    """(16) introduce ``δ(π_icols(.))`` above a join whose output is
    key-unique within the needed columns and not yet deduplicated
    upstream — this is the δ that ends up in the plan tail."""
    if not isinstance(node, (Join, Cross)):
        return None
    if ctx.props.set_prop(node):
        return None
    icols = ctx.props.icols(node)
    if not icols or not ctx.props.has_key_within(node, icols):
        return None
    ordered = [c for c in node.columns if c in icols]
    return Distinct(Project.keep(node, ordered))


def _oriented_equijoin(node: Operator) -> tuple[str, str] | None:
    """Equi-join columns oriented as (left column, right column)."""
    if not isinstance(node, Join):
        return None
    eq = node.equijoin_cols()
    if eq is None:
        return None
    a, b = eq
    if a in node.left.columns and b in node.right.columns:
        return a, b
    if b in node.left.columns and a in node.right.columns:
        return b, a
    return None


def rule_17_push_join_through_unary(node: Operator, ctx: RewriteContext) -> Operator | None:
    """(17) push an equi-join below π / σ / @ on either input.

    The unary operator rises above the join; a projection is extended
    to pass the other operand's columns through.  Blocked when DAG
    sharing would make the inner join's schemas collide — that case is
    rule (19)'s job.
    """
    oriented = _oriented_equijoin(node)
    if oriented is None:
        return None
    a, b = oriented
    assert isinstance(node, Join)
    for side, join_col, other_col in ((0, a, b), (1, b, a)):
        unary = node.children[side]
        other = node.children[1 - side]

        if isinstance(unary, Select):
            inner_col = join_col
        elif isinstance(unary, Attach):
            if unary.col == join_col:
                continue  # join column is the attached constant itself
            inner_col = join_col
        elif isinstance(unary, Project):
            old = unary.renaming.get(join_col)
            if old is None:
                continue
            inner_col = old
        else:
            continue

        inner_input = unary.children[0]
        if set(inner_input.columns) & set(other.columns):
            continue  # sharing collision — leave for rule (19)
        if side == 0:
            pred = Comparison("=", col(inner_col), col(other_col))
            inner = Join(inner_input, other, pred)
        else:
            pred = Comparison("=", col(other_col), col(inner_col))
            inner = Join(other, inner_input, pred)

        if isinstance(unary, Select):
            return Select(inner, unary.pred)
        if isinstance(unary, Attach):
            return Attach(inner, unary.col, unary.value)
        pairs = list(unary.cols) + [(c, c) for c in other.columns]
        return Project(inner, pairs)
    return None


def rule_18_push_join_through_join(node: Operator, ctx: RewriteContext) -> Operator | None:
    """(18) push an equi-join into one operand of a lower join/cross:
    ``(q1 ⊛ q2) ⋈a=b q3 -> q1 ⊛ (q2 ⋈a=b q3)`` when a ∈ cols(q2),
    guarded by the paper's footnote-5 size comparison so adjacent
    equi-joins cannot ping-pong forever."""
    oriented = _oriented_equijoin(node)
    if oriented is None:
        return None
    a, b = oriented
    assert isinstance(node, Join)
    for side, join_col in ((0, a), (1, b)):
        lower = node.children[side]
        other = node.children[1 - side]
        if not isinstance(lower, (Join, Cross)):
            continue
        for inner_side in (0, 1):
            receiver = lower.children[inner_side]
            bystander = lower.children[1 - inner_side]
            if join_col not in receiver.columns:
                continue
            if set(receiver.columns) & set(other.columns):
                continue
            # footnote 5: only descend when the carried operand is not
            # larger than the bystander being skipped over — breaks the
            # two-join oscillation while permitting genuine descent.
            if ctx.subplan_size(other) > ctx.subplan_size(bystander):
                continue
            pred = Comparison("=", col(a), col(b))
            if side == 0:
                inner: Operator = Join(receiver, other, pred)
            else:
                inner = Join(other, receiver, pred)
            new_children = list(lower.children)
            new_children[inner_side] = inner
            if isinstance(lower, Join):
                return Join(new_children[0], new_children[1], lower.pred)
            return Cross(new_children[0], new_children[1])
    return None


def rule_19_collapse_key_selfjoin(node: Operator, ctx: RewriteContext) -> Operator | None:
    """(19) remove a degenerated key equi-join: both inputs are
    projection chains over the *same shared node* ``s`` and the join
    equates a key column of ``s`` with a copy of itself — every row
    joins exactly its own image, so the join is a projection of ``s``."""
    oriented = _oriented_equijoin(node)
    if oriented is None:
        return None
    a, b = oriented
    assert isinstance(node, Join)
    left_base, left_map = _strip_projections(node.left)
    right_base, right_map = _strip_projections(node.right)
    if left_base is not right_base:
        return None
    origin_a = left_map.get(a)
    origin_b = right_map.get(b)
    if origin_a is None or origin_b is None or origin_a != origin_b:
        return None
    if not ctx.props.has_singleton_key(left_base, origin_a):
        return None
    pairs = [(c, left_map[c]) for c in node.left.columns]
    pairs += [(c, right_map[c]) for c in node.right.columns]
    return Project(left_base, pairs)


def rule_20_provenance_selfjoin(node: Operator, ctx: RewriteContext) -> Operator | None:
    """(19') provenance-based key self-join elimination — the general
    form of rule (19) needed to reach the paper's Fig. 7 shape.

    For ``J = L ⋈a=b R`` where

    * ``R`` is a projection chain over a shared node ``s``,
    * ``b`` maps to a singleton key column ``k`` of ``s``, and
    * ``a`` inside ``L`` is a verbatim copy of that same ``s.k``
      (traced through π/σ/δ/@/#/%/⋈ copy steps),

    every ``L`` row joins exactly the ``s`` row it was derived from.
    The join is removed by *resurrecting* the other ``s`` columns that
    ``R`` contributes: the projections along the trace inside ``L`` are
    (copy-on-write) extended to carry them to the top under fresh
    names, and ``J`` becomes a projection of the widened ``L``.

    Soundness of the widening through δ on the path: the added columns
    are functions of the traced key copy, which is itself part of every
    node on the path, so duplicate groups are unchanged.
    """
    oriented = _oriented_equijoin(node)
    if oriented is None:
        return None
    a, b = oriented
    assert isinstance(node, Join)
    for a_col, b_col, copy_side, key_side in (
        (a, b, node.left, node.right),
        (b, a, node.right, node.left),
    ):
        base, mapping = _strip_projections(key_side)
        origin = mapping.get(b_col)
        if origin is None:
            continue
        if not ctx.props.has_singleton_key(base, origin):
            continue
        path = _trace_copy(copy_side, a_col, base, origin)
        if path is None:
            continue
        wanted = {
            src for out, src in mapping.items() if out != b_col and src != origin
        }
        fresh_of = {src: ctx.fresh_col(src) for src in sorted(wanted)}
        copy_pairs = [(c, c) for c in copy_side.columns]
        _resurrect(path, fresh_of)
        key_pairs = []
        for out, src in mapping.items():
            if src == origin:
                key_pairs.append((out, a_col))
            else:
                key_pairs.append((out, fresh_of[src]))
        if copy_side is node.left:
            ordered = copy_pairs + key_pairs
        else:
            ordered = key_pairs + copy_pairs
        return Project(copy_side, ordered)
    return None


def _trace(
    node: Operator, column: str, stop
) -> tuple[list[tuple[Operator, int]], Operator, str] | None:
    """Trace ``column`` of ``node`` down the plan as a value-copy until
    ``stop(current, name)`` accepts.  Returns ``(path, base, base_col)``
    where ``path`` is a top-to-bottom list of ``(node, child_index)``
    pairs (excluding the base), or ``None``.

    The trace is *equality-aware*: descending through a join whose
    predicate contains the conjunct ``x = y``, a trace carrying ``x``
    may continue as ``y`` into the other operand — on every output row
    the two columns hold the same value, so ``y``'s origin is a valid
    provenance for ``x``."""
    from repro.algebra.expressions import conjuncts as _conjuncts

    seen: set[tuple[int, str]] = set()

    def dfs(current: Operator, name: str):
        if (id(current), name) in seen:
            return None
        seen.add((id(current), name))
        if stop(current, name):
            return [], current, name
        if isinstance(current, Project):
            old = current.renaming.get(name)
            if old is None:
                return None
            sub = dfs(current.child, old)
            if sub is None:
                return None
            return [(current, 0)] + sub[0], sub[1], sub[2]
        if isinstance(current, (Select, Distinct)):
            sub = dfs(current.children[0], name)
            if sub is None:
                return None
            return [(current, 0)] + sub[0], sub[1], sub[2]
        if isinstance(current, (Attach, RowId, RowRank)):
            if name == current.col:
                return None  # generated at this node, not copied
            sub = dfs(current.children[0], name)
            if sub is None:
                return None
            return [(current, 0)] + sub[0], sub[1], sub[2]
        if isinstance(current, (Join, Cross)):
            branches: list[tuple[int, str]] = []
            for index, child in enumerate(current.children):
                if name in child.columns:
                    branches.append((index, name))
            if isinstance(current, Join):
                for conjunct in _conjuncts(current.pred):
                    if not isinstance(conjunct, Comparison):
                        continue
                    eq = conjunct.is_col_eq_col()
                    if eq is None:
                        continue
                    partner = None
                    if eq[0] == name:
                        partner = eq[1]
                    elif eq[1] == name:
                        partner = eq[0]
                    if partner is None:
                        continue
                    for index, child in enumerate(current.children):
                        if partner in child.columns:
                            branches.append((index, partner))
            for index, branch_name in branches:
                sub = dfs(current.children[index], branch_name)
                if sub is not None:
                    return [(current, index)] + sub[0], sub[1], sub[2]
            return None
        return None  # reached a leaf without satisfying the stop test

    return dfs(node, column)


def _trace_copy(
    node: Operator, column: str, target: Operator, target_col: str
) -> list[tuple[Operator, int]] | None:
    """Path along which ``column`` is a value-copy of
    ``target.target_col`` (see :func:`_trace`), or ``None``."""
    hit = _trace(
        node,
        column,
        lambda current, name: current is target and name == target_col,
    )
    return None if hit is None else hit[0]


def _resurrect(path: list[tuple[Operator, int]], fresh_of: dict[str, str]) -> None:
    """Widen the projections along the trace path *in place* so the
    ``fresh_of`` source columns of the base flow to the top under fresh
    names.  All other path operators (σ/δ/@/#/%/⋈) pass columns through
    untouched, so only projections need editing.

    In-place widening keeps DAG sharing intact (essential: cloning a
    shared ``#`` row-id node would decouple ids that must stay joined).
    It is sound for every consumer of a shared widened projection: the
    fresh names cannot collide, and duplicate elimination upstream is
    unaffected because the added columns are functions of the traced
    key copy, which every path projection outputs by construction.
    """
    if not fresh_of:
        return
    carried = {src: src for src in fresh_of}  # src -> carrying name here
    for node_on_path, _child_index in reversed(path):
        if isinstance(node_on_path, Project):
            extra = tuple(
                (fresh_of[src], carried[src]) for src in sorted(fresh_of)
            )
            node_on_path.cols = node_on_path.cols + extra
            carried = {src: fresh_of[src] for src in fresh_of}


def rule_21_rowid_join_translation(node: Operator, ctx: RewriteContext) -> Operator | None:
    """(19'') translate a row-id correlation predicate into the
    underlying key columns.

    A conjunct ``x = y`` whose two sides are both value-copies of the
    *same* ``#k`` row-id column correlates rows derived from the same
    ``#`` row.  Row ids are arbitrary unique surrogates for any
    candidate key ``K'`` of the ``#`` operator's input, so the conjunct
    is equivalent to the pairwise equality of ``K'`` copies — which are
    resurrected through both trace paths.  Once no consumer references
    the row-id column, rule (6) deletes the ``#`` operator, as in the
    paper's Fig. 6(e).

    This is what grounds for-loop iteration identity in ``pre`` values
    and turns Q2 into the paper's flat self-join chain.
    """
    if not isinstance(node, Join):
        return None
    conjunct_list = list(conjuncts(node.pred))
    for i, conjunct in enumerate(conjunct_list):
        if not isinstance(conjunct, Comparison):
            continue
        eq = conjunct.is_col_eq_col()
        if eq is None:
            continue
        x, y = eq
        if x in node.left.columns and y in node.right.columns:
            pass
        elif y in node.left.columns and x in node.right.columns:
            x, y = y, x
        else:
            continue

        def stop(current: Operator, name: str) -> bool:
            return isinstance(current, RowId) and name == current.col

        hit_x = _trace(node.left, x, stop)
        if hit_x is None:
            continue
        hit_y = _trace(node.right, y, stop)
        if hit_y is None or hit_y[1] is not hit_x[1]:
            continue
        rowid = hit_x[1]
        assert isinstance(rowid, RowId)
        alt_key = _pick_alternative_key(rowid.child, ctx)
        if alt_key is None:
            continue
        fresh_x = {c: ctx.fresh_col(c) for c in alt_key}
        fresh_y = {c: ctx.fresh_col(c) for c in alt_key}
        _resurrect(hit_x[0], fresh_x)
        _resurrect(hit_y[0], fresh_y)
        new_conjuncts = [c for j, c in enumerate(conjunct_list) if j != i]
        new_conjuncts += [
            Comparison("=", col(fresh_x[c]), col(fresh_y[c])) for c in alt_key
        ]
        if not new_conjuncts:
            return Cross(node.left, node.right)
        from repro.algebra.expressions import conjoin

        return Join(node.left, node.right, conjoin(new_conjuncts))
    return None


def _pick_alternative_key(
    child: Operator, ctx: RewriteContext
) -> tuple[str, ...] | None:
    """A candidate key of the ``#`` input to translate row ids into.

    Prefers keys free of rank-generated columns (ranks inside the join
    graph would block single-block SQL generation), then smaller keys.
    An empty key (at most one row) translates to no conjunct at all.
    """
    rank_cols = {
        n.col for n in all_nodes(child) if isinstance(n, (RowRank, RowId))
    }
    best: frozenset[str] | None = None
    for key in ctx.props.keys(child):
        penalty = (bool(key & rank_cols), len(key))
        if best is None or penalty < (bool(best & rank_cols), len(best)):
            best = key
    if best is None or best & rank_cols:
        return None
    return tuple(sorted(best))


def rule_3b_drop_const_conjuncts(node: Operator, ctx: RewriteContext) -> Operator | None:
    """(3') drop join conjuncts ``a = b`` that hold trivially because
    both columns carry the same constant; a join whose predicate
    becomes empty degenerates to a Cartesian product (cf. rule (3))."""
    if not isinstance(node, Join):
        return None
    const = ctx.props.const(node)
    kept: list = []
    dropped = False
    for conjunct in conjuncts(node.pred):
        if isinstance(conjunct, Comparison):
            eq = conjunct.is_col_eq_col()
            if (
                eq is not None
                and eq[0] in const
                and eq[1] in const
                and const[eq[0]] == const[eq[1]]
                and const[eq[0]] is not None
            ):
                dropped = True
                continue
        kept.append(conjunct)
    if not dropped:
        return None
    if not kept:
        return Cross(node.left, node.right)
    from repro.algebra.expressions import conjoin

    return Join(node.left, node.right, conjoin(kept))


def _strip_projections(node: Operator) -> tuple[Operator, dict[str, str]]:
    """Descend through a chain of projections, composing the renaming.
    Returns (base node, mapping from chain output column -> base column).
    """
    mapping = {c: c for c in node.columns}
    current = node
    while isinstance(current, Project):
        renaming = current.renaming
        mapping = {
            out: renaming[via]
            for out, via in mapping.items()
            if via in renaming
        }
        current = current.child
    return current, mapping
