"""Join graph / plan tail separation of isolated plans.

After isolation a plan should consist of a *tail* — the serialization
point, at most one δ, at most one %, and projections — sitting on top
of a *join graph*: joins, selections, projections and constant columns
over the shared ``doc`` leaf (paper Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.dagutils import all_nodes
from repro.algebra.ops import (
    Attach,
    Cross,
    Distinct,
    DocScan,
    Join,
    LitTable,
    Operator,
    Project,
    RowId,
    RowRank,
    Select,
    Serialize,
)

#: operators allowed inside the join graph (pipelineable)
PIPELINEABLE = (Join, Cross, Select, Project, Attach, DocScan, LitTable)

#: operators allowed in the plan tail
TAIL_OPS = (Serialize, Distinct, Project, RowRank, Attach)


@dataclass
class JoinGraph:
    """The split of an isolated plan into tail and graph regions."""

    root: Serialize
    tail: list[Operator]
    graph_root: Operator

    @property
    def doc_references(self) -> int:
        """Number of ``doc`` table references in the graph (a self-join
        of n instances references doc from n places)."""
        count = 0
        doc_ids = {
            id(n) for n in all_nodes(self.graph_root) if isinstance(n, DocScan)
        }
        for node in all_nodes(self.graph_root):
            for child in node.children:
                if id(child) in doc_ids:
                    count += 1
        return count

    @property
    def join_count(self) -> int:
        return sum(
            1 for n in all_nodes(self.graph_root) if isinstance(n, (Join, Cross))
        )


def extract_join_graph(root: Serialize) -> JoinGraph:
    """Split an isolated plan into plan tail and join graph.

    The tail is the maximal chain of Serialize / Distinct / Project /
    RowRank / Attach operators from the root downwards; the node below
    is the join graph root.
    """
    tail: list[Operator] = [root]
    current: Operator = root.child
    while isinstance(current, (Distinct, Project, RowRank, Attach)) and not isinstance(
        current, (Join, Cross)
    ):
        # stop descending once the subtree is pure join-graph material —
        # keep projections that still belong to the graph for the graph.
        if isinstance(current, (Project, Attach)) and _is_graph_region(current):
            break
        tail.append(current)
        current = current.children[0]
    return JoinGraph(root=root, tail=tail, graph_root=current)


def _is_graph_region(node: Operator) -> bool:
    """True when the subplan below contains only pipelineable operators."""
    return all(isinstance(n, PIPELINEABLE) for n in all_nodes(node))


def is_join_graph(root: Serialize) -> bool:
    """True when the plan separates into a clean tail + join graph:
    no rank, row-id or duplicate elimination below the graph root, at
    most one δ and one % in the tail."""
    split = extract_join_graph(root)
    if not _is_graph_region(split.graph_root):
        return False
    distincts = sum(1 for n in split.tail if isinstance(n, Distinct))
    ranks = sum(1 for n in split.tail if isinstance(n, RowRank))
    rowids = sum(1 for n in split.tail if isinstance(n, RowId))
    return distincts <= 1 and ranks <= 1 and rowids == 0
