"""Join graph isolation (paper Section 3).

The rewriting engine moves the blocking operators — row rank ``%`` and
duplicate elimination ``δ`` — into plan tail positions while pushing
equi-joins down into the plan, until the plan separates into

* a **plan tail** (serialize, one δ, one %, projections), and
* a **join graph**: a bundle of references to the shared ``doc`` table
  connected by conjunctive equality and range predicates, interleaved
  only with pipelineable operators (π, σ, @).

The rule set is paper Fig. 5, rules (1)–(19), driven by the plan
properties of Tables 2–5.
"""

from repro.rewrite.engine import IsolationEngine, IsolationStats, isolate
from repro.rewrite.joingraph import JoinGraph, extract_join_graph, is_join_graph

__all__ = [
    "IsolationEngine",
    "IsolationStats",
    "JoinGraph",
    "extract_join_graph",
    "is_join_graph",
    "isolate",
]
