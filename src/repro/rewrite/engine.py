"""Goal-directed driver for the join graph isolation rewrites.

The paper prescribes an order on the three subgoals: house-cleaning
whenever necessary, goal ρ (a single rank operator in the plan tail)
before goal δ (tail duplicate elimination) and join push-down/removal.
The driver mirrors this with three phases, each run to fixpoint:

1. house-cleaning only (rules 1–8, 14, 15);
2. + the rank rules (9–13);
3. + δ introduction (16) and join push-down/removal (17–19).

Termination is guaranteed by the rules themselves (each either removes
an operator, restricts its arguments, or moves a join strictly
downward / a rank strictly upward); a structural-fingerprint cycle
check and a hard step budget guard against implementation slips.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from time import perf_counter_ns
from typing import TYPE_CHECKING, Callable, Sequence

from repro.algebra.dagutils import (
    all_nodes,
    parents_map,
    plan_fingerprint,
    replace_node,
    validate_plan,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.rulecheck import PlanSanitizer
from repro.algebra.ops import Operator, Serialize
from repro.algebra.properties import infer_properties
from repro.errors import RewriteError
from repro.obs import get_metrics, get_tracer
from repro.obs.tracer import Tracer
from repro.rewrite import rules as R
from repro.rewrite.rules import RewriteContext

Rule = Callable[[Operator, RewriteContext], Operator | None]

#: house-cleaning: simplify or remove operators
HOUSE_CLEANING: tuple[tuple[str, Rule], ...] = (
    ("7b", R.rule_7b_drop_dangling_pairs),
    ("2b", R.rule_2b_identity_project),
    ("2", R.rule_2_merge_projects),
    ("4", R.rule_4_attach_unreferenced),
    ("5", R.rule_5_rank_unreferenced),
    ("6", R.rule_6_rowid_unreferenced),
    ("7", R.rule_7_project_restrict),
    ("8", R.rule_8_rank_drop_const_order),
    ("1", R.rule_1_cross_literal),
    ("3", R.rule_3_const_join_to_cross),
    ("3b", R.rule_3b_drop_const_conjuncts),
    ("14", R.rule_14_distinct_redundant),
    ("15", R.rule_15_distinct_drop_const),
)

#: goal ρ: establish a single rank operator in the plan tail
RANK_GOAL: tuple[tuple[str, Rule], ...] = (
    ("13", R.rule_13_rank_splice),
    ("9", R.rule_9_rank_single_to_project),
    ("10", R.rule_10_rank_pullup_unary),
    ("11", R.rule_11_rank_pullup_project),
    ("12", R.rule_12_rank_pullup_join),
)

#: goal δ + join push-down and removal
JOIN_GOAL: tuple[tuple[str, Rule], ...] = (
    ("16", R.rule_16_introduce_tail_distinct),
    ("19", R.rule_19_collapse_key_selfjoin),
    ("20", R.rule_20_provenance_selfjoin),
    ("21", R.rule_21_rowid_join_translation),
    ("17", R.rule_17_push_join_through_unary),
    ("18", R.rule_18_push_join_through_join),
)

ALL_RULES: dict[str, Rule] = {
    name: fn for name, fn in (*HOUSE_CLEANING, *RANK_GOAL, *JOIN_GOAL)
}


#: display order of the driver's three phases
PHASE_NAMES = ("house-cleaning", "rank", "join")


@dataclass
class IsolationStats:
    """How the isolation run went: per-rule application counts, DAG
    size shrink, and per-phase timing."""

    applications: Counter = field(default_factory=Counter)
    steps: int = 0
    cycles_broken: int = 0
    #: operator count of the compiled plan before / after isolation
    nodes_before: int = 0
    nodes_after: int = 0
    #: wall-clock nanoseconds spent in each driver phase
    phase_ns: dict[str, int] = field(default_factory=dict)
    #: rule applications per driver phase
    phase_applications: Counter = field(default_factory=Counter)

    def total(self, *rule_names: str) -> int:
        if not rule_names:
            return sum(self.applications.values())
        return sum(self.applications[n] for n in rule_names)

    @property
    def nodes_removed(self) -> int:
        """How many operators isolation eliminated (the size-shrink
        that turns the stacked plan into a join graph)."""
        return self.nodes_before - self.nodes_after

    @property
    def total_ns(self) -> int:
        return sum(self.phase_ns.values())


class IsolationEngine:
    """Applies the Fig. 5 rule set to a compiled plan.

    Parameters
    ----------
    disabled:
        Rule names (e.g. ``{"16", "17"}``) to leave out — used by the
        ablation benchmarks.
    max_steps:
        Hard budget on rule applications (defensive; typical queries
        need well under a thousand).
    sanitizer:
        A :class:`repro.analysis.PlanSanitizer` validating the plan
        after *every* individual rule application (and the compiler
        output before the first); raises
        :class:`repro.errors.SanitizerError` naming the offending rule.
    """

    def __init__(
        self,
        disabled: set[str] | None = None,
        max_steps: int = 50_000,
        sanitizer: "PlanSanitizer | None" = None,
    ):
        self.disabled = disabled or set()
        self.max_steps = max_steps
        self.sanitizer = sanitizer

    def isolate(self, root: Serialize) -> tuple[Serialize, IsolationStats]:
        """Rewrite ``root`` into join-graph shape.  The input DAG is
        mutated; the returned root is the place to continue from."""
        stats = IsolationStats()
        tracer = get_tracer()
        self._counter = [0]  # fresh-name counter, shared across steps
        if self.sanitizer is not None:
            self.sanitizer.check_initial(root)
        stats.nodes_before = len(all_nodes(root))
        # Phase 3 searches the join-goal rules *before* the δ-removing
        # house-cleaning rules (14)/(15): the key-join collapses (19)/(20)
        # rely on candidate keys that the intermediate δs still certify;
        # removing those δs first would strand the joins.
        tidy = tuple(
            (n, f) for n, f in HOUSE_CLEANING if n not in ("14", "15")
        )
        sweep = tuple((n, f) for n, f in HOUSE_CLEANING if n in ("14", "15"))
        phases: list[Sequence[tuple[str, Rule]]] = [
            HOUSE_CLEANING,
            (*HOUSE_CLEANING, *RANK_GOAL),
            (*tidy, *RANK_GOAL, *JOIN_GOAL, *sweep),
        ]
        with tracer.span("isolate", nodes_before=stats.nodes_before) as span:
            for phase_name, phase in zip(PHASE_NAMES, phases):
                active = [(n, f) for n, f in phase if n not in self.disabled]
                steps_before = stats.steps
                start = perf_counter_ns()
                with tracer.span(
                    f"isolate.phase:{phase_name}", rules=len(active)
                ) as phase_span:
                    root = self._run_phase(root, active, stats, tracer)
                    stats.phase_applications[phase_name] = (
                        stats.steps - steps_before
                    )
                    phase_span.set(
                        applications=stats.phase_applications[phase_name]
                    )
                stats.phase_ns[phase_name] = perf_counter_ns() - start
            validate_plan(root)
            stats.nodes_after = len(all_nodes(root))
            span.set(
                nodes_after=stats.nodes_after,
                steps=stats.steps,
                cycles_broken=stats.cycles_broken,
            )
        self._flush_metrics(stats)
        return root, stats

    def _flush_metrics(self, stats: IsolationStats) -> None:
        """Fold one run's stats into the process-global registry (one
        flush per run; the rule-search loop itself stays metrics-free)."""
        metrics = get_metrics()
        metrics.count("rewrite.runs")
        metrics.count("rewrite.steps", stats.steps)
        if stats.cycles_broken:
            metrics.count("rewrite.cycles_broken", stats.cycles_broken)
        for rule, fires in stats.applications.items():
            metrics.count(f"rewrite.rule_fired.{rule}", fires)
        for phase, elapsed in stats.phase_ns.items():
            metrics.observe(f"rewrite.phase_ns.{phase}", elapsed)
        metrics.observe("rewrite.isolate_ns", stats.total_ns)
        metrics.gauge("rewrite.nodes_before", stats.nodes_before)
        metrics.gauge("rewrite.nodes_after", stats.nodes_after)
        metrics.gauge("rewrite.nodes_removed", stats.nodes_removed)

    def _run_phase(
        self,
        root: Serialize,
        phase_rules: Sequence[tuple[str, Rule]],
        stats: IsolationStats,
        tracer: Tracer,
    ) -> Serialize:
        seen_fingerprints = {plan_fingerprint(root)}
        while True:
            if stats.steps > self.max_steps:
                raise RewriteError(
                    f"isolation exceeded {self.max_steps} rule applications"
                )
            applied = self._apply_one(root, phase_rules, stats, tracer)
            if applied is None:
                return root
            root = applied
            fp = plan_fingerprint(root)
            if fp in seen_fingerprints:
                stats.cycles_broken += 1
                return root
            seen_fingerprints.add(fp)

    def _apply_one(
        self,
        root: Serialize,
        phase_rules: Sequence[tuple[str, Rule]],
        stats: IsolationStats,
        tracer: Tracer,
    ) -> Serialize | None:
        ctx = RewriteContext(
            root=root,
            props=infer_properties(root),
            parents=parents_map(root),
            counter=self._counter,
        )
        # rules may mutate the DAG in place during the *attempt* (not
        # only via the returned replacement), so the sanitizer snapshot
        # has to be taken before any rule runs.
        before = (
            self.sanitizer.snapshot(root) if self.sanitizer is not None else None
        )
        nodes = all_nodes(root)
        for name, rule in phase_rules:
            # rule 16 introduces the tail δ: scan top-down so it lands
            # at the topmost eligible join; everything else bottom-up.
            scan = reversed(nodes) if name == "16" else iter(nodes)
            for node in scan:
                if node is root:
                    continue
                replacement = rule(node, ctx)
                if replacement is not None and replacement is not node:
                    stats.applications[name] += 1
                    stats.steps += 1
                    if tracer.enabled:
                        tracer.event(
                            f"rule({name})",
                            rule=name,
                            node=type(node).__name__,
                            step=stats.steps,
                        )
                    new_root = replace_node(root, node, replacement)
                    assert isinstance(new_root, Serialize)
                    if self.sanitizer is not None:
                        self.sanitizer.after_step(name, before, new_root)
                    return new_root
        return None


def isolate(
    root: Serialize,
    disabled: set[str] | None = None,
    sanitizer: "PlanSanitizer | None" = None,
) -> tuple[Serialize, IsolationStats]:
    """Convenience wrapper: run join graph isolation on a compiled plan."""
    return IsolationEngine(disabled=disabled, sanitizer=sanitizer).isolate(root)
