"""Deterministic DBLP-like bibliography document generator.

Mirrors the shape of Michael Ley's DBLP XML that the paper's Table 8
queries Q5 and Q6 run against: a flat ``dblp`` root with publication
elements (``inproceedings``, ``article``, ``phdthesis``,
``proceedings``) carrying ``@key`` attributes, authors/editors, titles
and textual years.  The special ``conf/vldb2001`` proceedings entry
that Q5 looks up is always present.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.xmltree.model import DocumentNode, ElementNode, TextNode

_SURNAMES = (
    "Grust Mayr Rittinger Teubner Boncz Kersten Manegold Keulen Sakr "
    "Chamberlin Codd Gray Stonebraker Selinger Astrahan Lorie Price"
).split()
_TITLE_WORDS = (
    "relational query processing xml database efficient evaluation "
    "join optimization tree pattern algebra streams indexing adaptive "
    "purely compositional order duplicate semantics engine"
).split()
_VENUES = ("VLDB", "SIGMOD", "ICDE", "EDBT", "CIDR", "TODS")


@dataclass
class DBLPConfig:
    """Publication counts, expressed through one scale ``factor``.

    At ``factor=1.0`` the instance approximates the ~1M-publication
    DBLP snapshot of the paper; defaults are laptop-sized.
    """

    factor: float = 0.002
    seed: int = 7

    @property
    def inproceedings(self) -> int:
        return max(10, int(530_000 * self.factor))

    @property
    def articles(self) -> int:
        return max(10, int(380_000 * self.factor))

    @property
    def theses(self) -> int:
        return max(8, int(6_000 * self.factor))

    @property
    def proceedings(self) -> int:
        return max(4, int(14_000 * self.factor))


def _elem(tag: str, text: str | None = None, **attrs: str) -> ElementNode:
    element = ElementNode(tag)
    for name, value in attrs.items():
        element.set_attribute(name, value)
    if text is not None:
        element.append(TextNode(text))
    return element


def _title(rng: random.Random) -> str:
    return " ".join(rng.choice(_TITLE_WORDS) for _ in range(5)).capitalize()


def _author(rng: random.Random) -> str:
    return f"{rng.choice('ABCDEFGHJKLMPRST')}. {rng.choice(_SURNAMES)}"


def generate_dblp(config: DBLPConfig | None = None, uri: str = "dblp.xml") -> DocumentNode:
    """Build a DBLP-like bibliography tree."""
    cfg = config or DBLPConfig()
    rng = random.Random(cfg.seed)
    dblp = ElementNode("dblp")

    # the proceedings entry Q5 looks up, with editor and title present
    vldb2001 = _elem("proceedings", key="conf/vldb2001")
    vldb2001.append(_elem("editor", "P. M. G. Apers"))
    vldb2001.append(_elem("editor", "P. Atzeni"))
    vldb2001.append(
        _elem("title", "VLDB 2001, Proceedings of 27th International "
                       "Conference on Very Large Data Bases")
    )
    vldb2001.append(_elem("year", "2001"))
    dblp.append(vldb2001)

    for i in range(cfg.proceedings):
        venue = rng.choice(_VENUES)
        year = rng.randint(1975, 2009)
        entry = _elem("proceedings", key=f"conf/{venue.lower()}{year}-{i}")
        if rng.random() < 0.9:
            entry.append(_elem("editor", _author(rng)))
        entry.append(_elem("title", f"{venue} {year} Proceedings"))
        entry.append(_elem("year", str(year)))
        dblp.append(entry)

    for i in range(cfg.inproceedings):
        year = rng.randint(1975, 2009)
        entry = _elem("inproceedings", key=f"conf/c{i}")
        for _ in range(rng.randint(1, 3)):
            entry.append(_elem("author", _author(rng)))
        entry.append(_elem("title", _title(rng)))
        entry.append(_elem("year", str(year)))
        entry.append(_elem("booktitle", rng.choice(_VENUES)))
        entry.append(_elem("pages", f"{rng.randint(1, 400)}-{rng.randint(401, 500)}"))
        dblp.append(entry)

    for i in range(cfg.articles):
        year = rng.randint(1975, 2009)
        entry = _elem("article", key=f"journals/j{i}")
        for _ in range(rng.randint(1, 3)):
            entry.append(_elem("author", _author(rng)))
        entry.append(_elem("title", _title(rng)))
        entry.append(_elem("year", str(year)))
        entry.append(_elem("journal", rng.choice(("TODS", "VLDB J.", "SIGMOD Rec."))))
        dblp.append(entry)

    for i in range(cfg.theses):
        year = rng.randint(1980, 2009)  # some strictly before 1994 (Q6)
        entry = _elem("phdthesis", key=f"phd/t{i}")
        entry.append(_elem("author", _author(rng)))
        entry.append(_elem("title", _title(rng)))
        entry.append(_elem("year", str(year)))
        entry.append(_elem("school", "Universität Tübingen"))
        dblp.append(entry)

    document = DocumentNode(uri)
    document.append(dblp)
    return document
