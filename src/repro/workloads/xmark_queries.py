"""An extended XMark query catalog.

The paper notes that its query set "together subsum[es] e.g., all
queries of the XMark and TPoX benchmark sets" that fall inside the
workhorse fragment.  This module spells out the XMark benchmark
queries expressible in the fragment (no aggregation, construction or
positional access), for the wider integration tests and benchmarks.

Numbers follow the original XMark query list [22].
"""

from __future__ import annotations

from repro.workloads.queries import PaperQuery

XMARK_QUERIES: dict[str, PaperQuery] = {
    # XMark Q1: the initial bid of a specific person's open auctions is
    # out of fragment (join via personref); the classic point lookup:
    "X1": PaperQuery(
        name="X1",
        document="xmark",
        text='/site/people/person[@id = "person0"]/name/text()',
        description="XMark Q1: name of the person with id person0",
    ),
    # XMark Q5: closed auctions beyond a price threshold (count in the
    # original; we return the witnesses)
    "X5": PaperQuery(
        name="X5",
        document="xmark",
        text='/site/closed_auctions/closed_auction[price >= 40]/price',
        description="XMark Q5 (witness form): prices of sales >= 40",
    ),
    # XMark Q8/Q9 family: value joins between people and auctions
    "X8": PaperQuery(
        name="X8",
        document="xmark",
        text="""
            for $p in /site/people/person,
                $a in /site/closed_auctions/closed_auction
            where $a/buyer/@person = $p/@id
            return $p/name
        """,
        description="XMark Q8 (witness form): buyers' names per purchase",
    ),
    "X9": PaperQuery(
        name="X9",
        document="xmark",
        text="""
            for $p in /site/people/person,
                $a in /site/closed_auctions/closed_auction,
                $i in /site/regions/europe/item
            where $a/buyer/@person = $p/@id
              and $a/itemref/@item = $i/@id
            return $p/name
        """,
        description="XMark Q9 (witness form): European purchases per buyer",
    ),
    # XMark Q13: regional item names (simple path scan)
    "X13": PaperQuery(
        name="X13",
        document="xmark",
        text="/site/regions/australia/item/name",
        description="XMark Q13: names of Australian items",
    ),
    # XMark Q14: items whose description mentions a word is out of
    # fragment (contains()); substitute an exact-value variant:
    "X15": PaperQuery(
        name="X15",
        document="xmark",
        text="/site/closed_auctions/closed_auction/annotation/"
        "description/text/text()",
        description="XMark Q15 (shortened path): annotation texts",
    ),
    # XMark Q16: deep path with attribute tail
    "X16": PaperQuery(
        name="X16",
        document="xmark",
        text="/site/closed_auctions/closed_auction/seller/@person",
        description="XMark Q16 (shortened): sellers of closed auctions",
    ),
    # XMark Q17: people without a homepage — negation is out of
    # fragment; the positive dual:
    "X17": PaperQuery(
        name="X17",
        document="xmark",
        text="/site/people/person[phone]/name",
        description="XMark Q17 (positive dual): people with a phone",
    ),
    # XMark Q19-ish: open auctions ordered by initial (order-by is out
    # of fragment; document order witness set)
    "X19": PaperQuery(
        name="X19",
        document="xmark",
        text="/site/open_auctions/open_auction[initial >= 100]/itemref/@item",
        description="XMark Q19 (witness form): items of pricey auctions",
    ),
}
