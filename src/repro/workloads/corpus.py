"""Multi-document benchmark corpora for the sharded collection store.

The scatter-gather experiments need *collections*: many independent
documents whose union a serial processor would host in one table.
:func:`xmark_corpus` / :func:`dblp_corpus` generate N documents from
the existing single-document generators, each with a distinct seed
(content differs per document — entity ids, join keys and value
distributions are document-local) and a distinct URI, so shard
placement (``crc32(uri) % shards``) spreads them around and
``collection()`` queries have real per-document answers to merge.

Everything is deterministic in ``(seed, documents, factor)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.workloads.dblp import DBLPConfig, generate_dblp
from repro.workloads.xmark import XMarkConfig, generate_xmark
from repro.xmltree.model import DocumentNode

__all__ = ["CorpusConfig", "dblp_corpus", "xmark_corpus"]


@dataclass(frozen=True)
class CorpusConfig:
    """Shape of a generated multi-document corpus."""

    #: number of documents
    documents: int = 8
    #: per-document scale factor of the underlying generator
    factor: float = 0.01
    #: base seed; document *i* is generated with ``seed + i``
    seed: int = 42
    #: URI template; must contain ``{i}``
    uri_template: str = field(default="xmark{i}.xml")

    def __post_init__(self) -> None:
        if self.documents < 1:
            raise ValueError(f"documents must be >= 1, got {self.documents}")
        if "{i}" not in self.uri_template:
            raise ValueError("uri_template must contain '{i}'")

    def uri(self, i: int) -> str:
        return self.uri_template.format(i=i)


def xmark_corpus(config: CorpusConfig | None = None) -> list[DocumentNode]:
    """N XMark-like auction documents, one tree per URI."""
    cfg = config or CorpusConfig()
    return [
        generate_xmark(
            XMarkConfig(factor=cfg.factor, seed=cfg.seed + i),
            uri=cfg.uri(i),
        )
        for i in range(cfg.documents)
    ]


def dblp_corpus(config: CorpusConfig | None = None) -> list[DocumentNode]:
    """N DBLP-like bibliography documents, one tree per URI."""
    cfg = config or CorpusConfig(uri_template="dblp{i}.xml")
    return [
        generate_dblp(
            DBLPConfig(factor=cfg.factor, seed=cfg.seed + i),
            uri=cfg.uri(i),
        )
        for i in range(cfg.documents)
    ]
