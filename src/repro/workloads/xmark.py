"""Deterministic XMark-like auction document generator.

Follows the structure of the XMark benchmark documents [22] that the
paper's experiments query (Q1–Q4): a ``site`` with regions/items,
categories, people, open auctions (with 0–n bidders) and closed
auctions whose ``itemref/@item`` and ``incategory/@category``
attributes realize the value-based joins of Q2.

At ``factor=1.0`` the entity counts match the original XMark scale-1
instance the paper used (21750 items, 12000 open / 9750 closed
auctions, 1000 categories, 25500 persons — a ~110 MB document).  The
default factor is far smaller; the *ratios* (and hence all plan-shape
and crossover behaviour) are preserved at any scale.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.xmltree.model import DocumentNode, ElementNode, TextNode

_WORDS = (
    "gently impressed provident officer yourselves unmatched despair "
    "sorrow campaign preserver honour moonlight gondola grievance "
    "assembly athenian merchant purse ducats bond flesh venice rialto "
    "tribunal magnifico argosies quietly"
).split()

_REGIONS = ("africa", "asia", "australia", "europe", "namerica", "samerica")


@dataclass
class XMarkConfig:
    """Entity counts, expressed through one scale ``factor``."""

    factor: float = 0.01
    seed: int = 42

    @property
    def items(self) -> int:
        return max(6, int(21750 * self.factor))

    @property
    def categories(self) -> int:
        return max(3, int(1000 * self.factor))

    @property
    def persons(self) -> int:
        return max(3, int(25500 * self.factor))

    @property
    def open_auctions(self) -> int:
        return max(4, int(12000 * self.factor))

    @property
    def closed_auctions(self) -> int:
        return max(4, int(9750 * self.factor))


def _text(rng: random.Random, n_words: int) -> str:
    return " ".join(rng.choice(_WORDS) for _ in range(n_words))


def _elem(tag: str, text: str | None = None, **attrs: str) -> ElementNode:
    element = ElementNode(tag)
    for name, value in attrs.items():
        element.set_attribute(name, value)
    if text is not None:
        element.append(TextNode(text))
    return element


def generate_xmark(
    config: XMarkConfig | None = None, uri: str = "auction.xml"
) -> DocumentNode:
    """Build an XMark-like auction document tree."""
    cfg = config or XMarkConfig()
    rng = random.Random(cfg.seed)
    site = ElementNode("site")

    # -- regions / items -------------------------------------------------
    regions = _elem("regions")
    site.append(regions)
    region_elems = {}
    for region in _REGIONS:
        region_elems[region] = _elem(region)
        regions.append(region_elems[region])
    for i in range(cfg.items):
        item = _elem("item", id=f"item{i}")
        item.append(_elem("location", _text(rng, 2)))
        item.append(_elem("quantity", str(rng.randint(1, 5))))
        item.append(_elem("name", _text(rng, 3)))
        payment = _elem("payment", "Creditcard")
        item.append(payment)
        description = _elem("description")
        description.append(_elem("text", _text(rng, 12)))
        item.append(description)
        for category in sorted(
            rng.sample(range(cfg.categories), rng.randint(1, 2))
        ):
            item.append(
                _elem("incategory", category=f"category{category}")
            )
        region_elems[rng.choice(_REGIONS)].append(item)

    # -- categories --------------------------------------------------------
    categories = _elem("categories")
    site.append(categories)
    for i in range(cfg.categories):
        category = _elem("category", id=f"category{i}")
        category.append(_elem("name", _text(rng, 2)))
        description = _elem("description")
        description.append(_elem("text", _text(rng, 8)))
        category.append(description)
        categories.append(category)

    # -- people --------------------------------------------------------------
    people = _elem("people")
    site.append(people)
    for i in range(cfg.persons):
        person = _elem("person", id=f"person{i}")
        person.append(_elem("name", _text(rng, 2)))
        person.append(_elem("emailaddress", f"mailto:person{i}@example.org"))
        if rng.random() < 0.5:
            person.append(_elem("phone", f"+{rng.randint(1, 99)} {rng.randint(100, 999)}"))
        if rng.random() < 0.3:
            address = _elem("address")
            address.append(_elem("street", _text(rng, 2)))
            address.append(_elem("city", _text(rng, 1)))
            address.append(_elem("country", "United States"))
            person.append(address)
        people.append(person)

    # -- open auctions (Q1: some have bidders, some do not) -----------------
    open_auctions = _elem("open_auctions")
    site.append(open_auctions)
    for i in range(cfg.open_auctions):
        auction = _elem("open_auction", id=f"open_auction{i}")
        auction.append(
            _elem("initial", f"{rng.uniform(1, 300):.2f}")
        )
        n_bidders = rng.choice((0, 0, 1, 1, 2, 3))  # ~1/3 without bidders
        for b in range(n_bidders):
            bidder = _elem("bidder")
            bidder.append(_elem("date", f"{rng.randint(1, 28):02d}/07/2000"))
            bidder.append(_elem("time", f"{rng.randint(0, 23):02d}:{rng.randint(0, 59):02d}"))
            bidder.append(
                _elem("personref", person=f"person{rng.randrange(cfg.persons)}")
            )
            bidder.append(_elem("increase", f"{rng.uniform(1, 30):.2f}"))
            auction.append(bidder)
        auction.append(_elem("current", f"{rng.uniform(1, 400):.2f}"))
        auction.append(
            _elem("itemref", item=f"item{rng.randrange(cfg.items)}")
        )
        auction.append(
            _elem("seller", person=f"person{rng.randrange(cfg.persons)}")
        )
        auction.append(_elem("quantity", "1"))
        auction.append(_elem("type", "Regular"))
        open_auctions.append(auction)

    # -- closed auctions (Q2/Q4: price, itemref; ~5% of prices > 500) -------
    closed_auctions = _elem("closed_auctions")
    site.append(closed_auctions)
    for i in range(cfg.closed_auctions):
        auction = _elem("closed_auction")
        auction.append(
            _elem("seller", person=f"person{rng.randrange(cfg.persons)}")
        )
        auction.append(
            _elem("buyer", person=f"person{rng.randrange(cfg.persons)}")
        )
        auction.append(
            _elem("itemref", item=f"item{rng.randrange(cfg.items)}")
        )
        if rng.random() < 0.05:
            price = rng.uniform(500.01, 4000)
        else:
            price = rng.uniform(1, 500)
        auction.append(_elem("price", f"{price:.2f}"))
        auction.append(_elem("date", f"{rng.randint(1, 28):02d}/06/2000"))
        auction.append(_elem("quantity", "1"))
        annotation = _elem("annotation")
        description = _elem("description")
        description.append(_elem("text", _text(rng, 6)))
        annotation.append(description)
        auction.append(annotation)
        closed_auctions.append(auction)

    document = DocumentNode(uri)
    document.append(site)
    return document
