"""The paper's query set.

* Q1 (Section 2.4): filter open auctions that have bidders;
* Q2 (Section 4): three nested for loops with two value-based joins —
  auction categories in which expensive items (price > 500) sold;
* Q3–Q6 (Table 8, after [15]): XPath point/scan queries over XMark and
  DBLP.  Q6's non-standard ``return-tuple`` is expressed as a sequence
  return ``(…, …, …)`` handled by :meth:`XQueryProcessor.compile_tuple`
  (the paper substituted an SQL/XML XMLTABLE construct instead).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PaperQuery:
    """One query of the paper's experiment section."""

    name: str
    document: str  # 'xmark' or 'dblp'
    text: str
    description: str
    is_tuple: bool = False


PAPER_QUERIES: dict[str, PaperQuery] = {
    "Q1": PaperQuery(
        name="Q1",
        document="xmark",
        text='doc("auction.xml")/descendant::open_auction[bidder]',
        description="open auctions that have at least one bidder "
        "(paper Section 2.4, Figs. 4/7/8/10)",
    ),
    "Q2": PaperQuery(
        name="Q2",
        document="xmark",
        text="""
            let $a := doc("auction.xml")
            for $ca in $a//closed_auction[price > 500],
                $i in $a//item,
                $c in $a//category
            where $ca/itemref/@item = $i/@id
              and $i/incategory/@category = $c/@id
            return $c/name
        """,
        description="names of categories in which expensive items sold "
        "beyond 500 (paper Section 4, Figs. 9/11)",
    ),
    "Q3": PaperQuery(
        name="Q3",
        document="xmark",
        text='/site/people/person[@id = "person0"]/name/text()',
        description="point lookup of one person's name (Table 8, [15] 9a)",
    ),
    "Q4": PaperQuery(
        name="Q4",
        document="xmark",
        text="//closed_auction/price/text()",
        description="all closed-auction prices — raw path traversal "
        "(Table 8, [15] 9c)",
    ),
    "Q5": PaperQuery(
        name="Q5",
        document="dblp",
        text='/dblp/*[@key = "conf/vldb2001" and editor and title]/title',
        description="wildcard lookup of the VLDB 2001 proceedings title "
        "(Table 8, [15] 8c)",
    ),
    "Q6": PaperQuery(
        name="Q6",
        document="dblp",
        text="""
            for $thesis in /dblp/phdthesis[year < "1994" and author and title]
            return ($thesis/title, $thesis/author, $thesis/year)
        """,
        description="tuple query over pre-1994 PhD theses "
        "(Table 8, [15] 8g; return-tuple as a sequence return)",
        is_tuple=True,
    ),
}

#: the worked three-step path of Section 2.2
Q0 = (
    'doc("auction.xml")/descendant::bidder/child::*/child::text()'
)
