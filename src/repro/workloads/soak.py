"""Open-loop multi-tenant soak harness for the front door.

The closed-loop service bench (:mod:`repro.service.bench`) measures
how fast N workers can drain a queue; a *soak* answers the production
question instead: with tenants submitting on **open-loop Poisson
clocks** (arrivals do not wait for completions — the real shape of
independent clients), does the admission boundary keep per-tenant
latency, fairness, and the fault ledger honest as offered load sweeps
past saturation?

The harness drives a :class:`~repro.service.FrontDoor` over a sharded
XMark corpus with ``N >= 3`` tenants, each with a distinct query-
template mix (interactive point lookups, analytics predicate scans,
reporting path sweeps) and a quota/weight contract.  Offered load
sweeps a multiplier curve (default ``0.5x, 1x, 2x`` of each tenant's
contracted rate) so the **knee** — the last point where goodput still
tracks offered load — and the post-knee fairness regime are both
visible in one report.

With ``fault_rate > 0`` the whole soak runs under chaos injection
(:func:`repro.faults.injection`), and the report carries the
**per-tenant fault ledger**: for every tenant,
``injected == retried + degraded + surfaced`` must hold exactly
(lossless per-tenant attribution is what the front door's per-group
metric registries buy; see ``docs/serving.md``).

A **differential gate** samples ~1% of OK responses during the storm,
then — faults off — re-executes each sampled query on a bare serial
:class:`~repro.pipeline.XQueryProcessor` over the same corpus and
asserts byte-identical serialization.  Chaos may slow answers;
it must never change them.

Emits ``repro.bench.soak/v1`` (``docs/schemas.md``); the CLI entry is
``repro serve-bench --soak`` and the committed artifact is
``BENCH_soak.json``.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Sequence

from repro.errors import QuotaExceeded, ServiceOverloaded
from repro.faults import FaultPlan, injection
from repro.pipeline import XQueryProcessor
from repro.service.frontdoor import FrontDoor
from repro.service.scatter import ShardedService
from repro.service.tenancy import TenantSpec
from repro.store import Collection
from repro.workloads.corpus import CorpusConfig, xmark_corpus
from repro.xmltree.serializer import serialize

__all__ = [
    "DEFAULT_TENANTS",
    "SoakConfig",
    "TenantProfile",
    "format_soak_report",
    "run_soak",
]

SCHEMA = "repro.bench.soak/v1"


@dataclass(frozen=True)
class TenantProfile:
    """One tenant's contract plus its query-template mix."""

    name: str
    #: template name -> XQuery text; arrivals draw uniformly
    queries: Mapping[str, str]
    #: contracted sustained rate (the token-bucket refill rate); the
    #: soak offers ``multiplier * rate_qps``
    rate_qps: float = 20.0
    #: token-bucket burst capacity
    burst: float = 10.0
    #: weighted-fair share
    weight: float = 1.0
    max_backlog: int = 512

    def spec(self) -> TenantSpec:
        return TenantSpec(
            name=self.name,
            rate_qps=self.rate_qps,
            burst=self.burst,
            weight=self.weight,
            max_backlog=self.max_backlog,
        )


#: Three distinct production personas over the XMark corpus.  Rates
#: are proportional to weights so the post-knee fairness index over
#: ``goodput / weight`` has a meaningful target of 1.0.
DEFAULT_TENANTS: tuple[TenantProfile, ...] = (
    TenantProfile(
        name="interactive",
        queries={
            "PT1": 'collection()//closed_auction[itemref/@item = "item3"]/price',
            "PT2": 'collection()//person[address/country = "United States"]/name',
        },
        rate_qps=40.0,
        burst=20.0,
        weight=2.0,
    ),
    TenantProfile(
        name="analytics",
        queries={
            "AN1": 'collection()//open_auction[bidder/increase > 25]/seller',
            "AN2": 'collection()//closed_auction[price > 500]/itemref',
        },
        rate_qps=20.0,
        burst=10.0,
        weight=1.0,
    ),
    TenantProfile(
        name="reporting",
        queries={
            "RP1": "collection()//item/name",
            "RP2": "collection()//open_auction/seller",
        },
        rate_qps=20.0,
        burst=10.0,
        weight=1.0,
    ),
)


@dataclass(frozen=True)
class SoakConfig:
    """Shape of one soak run (deterministic in ``seed`` up to async
    scheduling: arrival clocks and template draws are seeded)."""

    seed: int = 42
    #: wall-clock seconds per load point
    duration_s: float = 5.0
    #: offered-load multipliers over each tenant's contracted rate
    load_points: tuple[float, ...] = (0.5, 1.0, 2.0)
    shards: int = 2
    documents: int = 4
    factor: float = 0.005
    executor: str = "thread"
    #: overall chaos rate (:meth:`FaultPlan.uniform`); 0 disables
    fault_rate: float = 0.0
    fault_seed: int = 0
    deadline_s: float = 2.0
    #: fraction of OK responses sampled for the differential gate
    differential_rate: float = 0.01
    max_differential_samples: int = 64
    batch_max: int = 16
    batch_window_s: float = 0.002
    max_concurrent_batches: int = 4
    working_set_bytes: int | None = None
    tenants: tuple[TenantProfile, ...] = DEFAULT_TENANTS

    def __post_init__(self) -> None:
        if len(self.tenants) < 2:
            raise ValueError("a soak needs at least two tenants")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if not self.load_points:
            raise ValueError("load_points must be non-empty")
        if not 0.0 <= self.differential_rate <= 1.0:
            raise ValueError("differential_rate must be in [0, 1]")

    def quick(self) -> "SoakConfig":
        """CI-smoke size: tiny corpus, short points."""
        return replace(
            self,
            duration_s=min(self.duration_s, 2.0),
            documents=min(self.documents, 2),
            factor=min(self.factor, 0.002),
            load_points=tuple(self.load_points[:2] or (1.0,)),
        )


@dataclass
class _Sample:
    """One differentially-checked response."""

    tenant: str
    template: str
    query: str
    text: str
    multiplier: float


@dataclass
class _TenantDrive:
    """Outcome tally of one tenant at one load point (event-loop
    thread only — no locking needed)."""

    offered: int = 0
    ok: int = 0
    rejected_quota: int = 0
    rejected_overload: int = 0
    errors: dict[str, int] = field(default_factory=dict)


def _schedule(
    profile: TenantProfile,
    multiplier: float,
    duration_s: float,
    rng: random.Random,
) -> list[tuple[float, str]]:
    """The tenant's precomputed open-loop arrival plan: Poisson
    inter-arrival gaps at ``multiplier * rate_qps``, each arrival
    drawing one template uniformly."""
    rate = profile.rate_qps * multiplier
    names = sorted(profile.queries)
    arrivals: list[tuple[float, str]] = []
    t = 0.0
    while True:
        t += rng.expovariate(rate)
        if t >= duration_s:
            return arrivals
        arrivals.append((t, rng.choice(names)))


async def _drive_tenant(
    door: FrontDoor,
    service: ShardedService,
    profile: TenantProfile,
    arrivals: Sequence[tuple[float, str]],
    drive: _TenantDrive,
    sampler: random.Random,
    samples: list[_Sample],
    config: SoakConfig,
    multiplier: float,
) -> None:
    loop = asyncio.get_running_loop()
    t0 = loop.time()
    inflight: set[asyncio.Task] = set()

    async def one(template: str) -> None:
        drive.offered += 1
        try:
            result = await door.submit(
                profile.name, profile.queries[template]
            )
        except QuotaExceeded:
            drive.rejected_quota += 1
        except ServiceOverloaded:
            drive.rejected_overload += 1
        except Exception as error:
            # deadline misses and surfaced injected faults — tallied,
            # not re-raised: an open-loop driver keeps arriving
            name = type(error).__name__
            drive.errors[name] = drive.errors.get(name, 0) + 1
        else:
            drive.ok += 1
            if (
                len(samples) < config.max_differential_samples
                and sampler.random() < config.differential_rate
            ):
                samples.append(
                    _Sample(
                        tenant=profile.name,
                        template=template,
                        query=profile.queries[template],
                        text=service.serialize(result),
                        multiplier=multiplier,
                    )
                )

    # open loop: arrivals fire on the Poisson clock regardless of how
    # many submissions are still in flight
    for when, template in arrivals:
        delay = when - (loop.time() - t0)
        if delay > 0:
            await asyncio.sleep(delay)
        task = asyncio.create_task(one(template))
        inflight.add(task)
        task.add_done_callback(inflight.discard)
    if inflight:
        await asyncio.gather(*inflight, return_exceptions=True)


async def _run_point(
    service: ShardedService,
    config: SoakConfig,
    multiplier: float,
    point_index: int,
    samples: list[_Sample],
) -> dict[str, Any]:
    drives = {profile.name: _TenantDrive() for profile in config.tenants}
    sampler = random.Random(config.seed * 7919 + point_index)
    started = time.perf_counter()
    async with FrontDoor(
        service,
        [profile.spec() for profile in config.tenants],
        batch_max=config.batch_max,
        batch_window_s=config.batch_window_s,
        max_concurrent_batches=config.max_concurrent_batches,
        working_set_bytes=config.working_set_bytes,
        deadline_s=config.deadline_s,
    ) as door:
        await asyncio.gather(
            *(
                _drive_tenant(
                    door,
                    service,
                    profile,
                    _schedule(
                        profile,
                        multiplier,
                        config.duration_s,
                        random.Random(
                            config.seed * 1_000_003
                            + point_index * 101
                            + tenant_index
                        ),
                    ),
                    drives[profile.name],
                    sampler,
                    samples,
                    config,
                    multiplier,
                )
                for tenant_index, profile in enumerate(config.tenants)
            )
        )
        elapsed_s = time.perf_counter() - started
        door_stats = door.stats()
        ledger = door.fault_ledger()
    per_tenant: dict[str, Any] = {}
    for profile in config.tenants:
        drive = drives[profile.name]
        tenant_stats = door_stats["tenants"][profile.name]
        per_tenant[profile.name] = {
            "offered": drive.offered,
            "offered_qps": drive.offered / elapsed_s,
            "ok": drive.ok,
            "goodput_qps": drive.ok / elapsed_s,
            "rejected_quota": drive.rejected_quota,
            "rejected_overload": drive.rejected_overload,
            "errors": drive.errors,
            "latency_ms": tenant_stats["latency_ms"],
            "faults": ledger[profile.name],
            "ledger_balanced": tenant_stats["ledger_balanced"],
        }
    offered_total = sum(t["offered"] for t in per_tenant.values())
    ok_total = sum(t["ok"] for t in per_tenant.values())
    return {
        "multiplier": multiplier,
        "elapsed_s": elapsed_s,
        "offered": offered_total,
        "offered_qps": offered_total / elapsed_s,
        "ok": ok_total,
        "goodput_qps": ok_total / elapsed_s,
        "goodput_ratio": (ok_total / offered_total) if offered_total else 1.0,
        "per_tenant": per_tenant,
        "frontdoor": {
            "queue": door_stats["queue"],
            "counters": door_stats["counters"],
            "working_set": door_stats["working_set"],
        },
    }


def _fairness_index(values: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 when every tenant gets the same
    weight-normalized goodput, 1/n when one tenant takes everything."""
    if not values:
        return 1.0
    square_of_sum = sum(values) ** 2
    sum_of_squares = sum(value * value for value in values)
    if sum_of_squares == 0:
        return 1.0
    return square_of_sum / (len(values) * sum_of_squares)


def _differential_check(
    samples: Sequence[_Sample],
    texts: Sequence[tuple[str, str]],
) -> dict[str, Any]:
    """Re-execute every sampled query on a bare serial processor —
    faults are off by now — and demand byte-identical serialization."""
    if not samples:
        return {"sampled": 0, "checked": 0, "mismatches": []}
    processor = XQueryProcessor()
    for text, uri in texts:
        processor.load(text, uri)
    reference: dict[str, str] = {}
    mismatches: list[dict[str, Any]] = []
    for sample in samples:
        expected = reference.get(sample.query)
        if expected is None:
            items = processor.execute(sample.query)
            expected = reference[sample.query] = processor.serialize(items)
        if sample.text != expected:
            mismatches.append(
                {
                    "tenant": sample.tenant,
                    "template": sample.template,
                    "multiplier": sample.multiplier,
                    "got_bytes": len(sample.text),
                    "expected_bytes": len(expected),
                }
            )
    return {
        "sampled": len(samples),
        "checked": len(samples),
        "mismatches": mismatches,
    }


def _find_knee(curve: Sequence[dict[str, Any]]) -> dict[str, Any]:
    """The last load point — scanning the curve in offered order —
    where goodput still tracks offered load within 10%; past it the
    admission boundary is shedding by design."""
    knee = None
    for point in curve:
        if point["goodput_ratio"] >= 0.9:
            knee = point
        else:
            break
    return {
        "multiplier": knee["multiplier"] if knee else None,
        "goodput_qps": knee["goodput_qps"] if knee else None,
        "goodput_ratio": knee["goodput_ratio"] if knee else None,
    }


def run_soak(config: SoakConfig | None = None) -> dict[str, Any]:
    """Run the soak curve; returns the ``repro.bench.soak/v1`` report."""
    cfg = config or SoakConfig()
    corpus = CorpusConfig(
        documents=cfg.documents, factor=cfg.factor, seed=cfg.seed
    )
    texts = [(serialize(tree), tree.uri) for tree in xmark_corpus(corpus)]
    samples: list[_Sample] = []
    curve: list[dict[str, Any]] = []
    with ShardedService(
        Collection(cfg.shards),
        executor=cfg.executor,
        deadline_s=cfg.deadline_s,
    ) as service:
        for text, uri in texts:
            service.load(text, uri)
        faults_on = cfg.fault_rate > 0
        plan = (
            FaultPlan.uniform(cfg.fault_rate, seed=cfg.fault_seed)
            if faults_on
            else None
        )
        for point_index, multiplier in enumerate(
            sorted(cfg.load_points)
        ):
            if plan is not None:
                with injection(plan) as injector:
                    point = asyncio.run(
                        _run_point(
                            service, cfg, multiplier, point_index, samples
                        )
                    )
                    point["faults_injected"] = injector.counts.snapshot()
            else:
                point = asyncio.run(
                    _run_point(service, cfg, multiplier, point_index, samples)
                )
                point["faults_injected"] = {}
            curve.append(point)
        flight = service.stats().get("flight")
    differential = _differential_check(samples, texts)
    saturated = curve[-1]
    fairness_values = [
        saturated["per_tenant"][profile.name]["goodput_qps"] / profile.weight
        for profile in cfg.tenants
    ]
    fairness = _fairness_index(fairness_values)
    ledger_balanced = all(
        tenant["ledger_balanced"]
        for point in curve
        for tenant in point["per_tenant"].values()
    )
    knee = _find_knee(curve)
    report = {
        "schema": SCHEMA,
        "metadata": {
            "seed": cfg.seed,
            "duration_s": cfg.duration_s,
            "load_points": sorted(cfg.load_points),
            "shards": cfg.shards,
            "documents": cfg.documents,
            "factor": cfg.factor,
            "executor": cfg.executor,
            "deadline_s": cfg.deadline_s,
            "fault_rate": cfg.fault_rate,
            "fault_seed": cfg.fault_seed,
            "differential_rate": cfg.differential_rate,
        },
        "tenants": {
            profile.name: {
                "rate_qps": profile.rate_qps,
                "burst": profile.burst,
                "weight": profile.weight,
                "templates": sorted(profile.queries),
            }
            for profile in cfg.tenants
        },
        "curve": curve,
        "knee": knee,
        "fairness": {
            "index": fairness,
            "at_multiplier": saturated["multiplier"],
            "per_tenant_goodput_per_weight": {
                profile.name: value
                for profile, value in zip(cfg.tenants, fairness_values)
            },
        },
        "faults": {
            "enabled": faults_on,
            "rate": cfg.fault_rate,
            "ledger_balanced": ledger_balanced,
        },
        "differential": differential,
        "flight": flight,
        "gates": {
            "knee_found": knee["multiplier"] is not None,
            "fairness_ok": fairness >= 0.9,
            "ledger_balanced": ledger_balanced,
            "differential_ok": not differential["mismatches"],
        },
    }
    report["gates"]["passed"] = all(report["gates"].values())
    return report


def format_soak_report(report: dict[str, Any]) -> str:
    """Human-readable rendering of a soak report."""
    lines = [
        f"soak [{report['schema']}] — "
        f"{len(report['tenants'])} tenants, "
        f"faults {'on' if report['faults']['enabled'] else 'off'}"
    ]
    header = (
        f"{'mult':>6} {'offered/s':>10} {'goodput/s':>10} "
        f"{'ratio':>6}  per-tenant p99 (ms)"
    )
    lines.append(header)
    for point in report["curve"]:
        p99s = ", ".join(
            f"{name}={stats['latency_ms']['p99']:.1f}"
            for name, stats in sorted(point["per_tenant"].items())
        )
        lines.append(
            f"{point['multiplier']:>6.2f} "
            f"{point['offered_qps']:>10.1f} "
            f"{point['goodput_qps']:>10.1f} "
            f"{point['goodput_ratio']:>6.2f}  {p99s}"
        )
    knee = report["knee"]
    lines.append(
        f"knee: {knee['multiplier']}x (goodput ratio "
        f"{knee['goodput_ratio'] if knee['goodput_ratio'] is None else round(knee['goodput_ratio'], 3)})"
    )
    lines.append(
        f"fairness (Jain, goodput/weight) at "
        f"{report['fairness']['at_multiplier']}x: "
        f"{report['fairness']['index']:.3f}"
    )
    lines.append(
        f"fault ledger balanced: {report['faults']['ledger_balanced']}; "
        f"differential: {report['differential']['sampled']} sampled, "
        f"{len(report['differential']['mismatches'])} mismatches"
    )
    lines.append(
        "gates: "
        + ", ".join(
            f"{name}={'PASS' if ok else 'FAIL'}"
            for name, ok in report["gates"].items()
            if name != "passed"
        )
    )
    return "\n".join(lines)
