"""Benchmark workloads: scalable XMark- and DBLP-like document
generators plus the paper's query set (Q1, Q2 of Sections 2.4/4 and
Q3–Q6 of Table 8)."""

from repro.workloads.xmark import XMarkConfig, generate_xmark
from repro.workloads.dblp import DBLPConfig, generate_dblp
from repro.workloads.corpus import CorpusConfig, dblp_corpus, xmark_corpus
from repro.workloads.queries import PAPER_QUERIES, PaperQuery
from repro.workloads.soak import (
    DEFAULT_TENANTS,
    SoakConfig,
    TenantProfile,
    format_soak_report,
    run_soak,
)
from repro.workloads.tpox import TPOX_QUERIES, TPoXConfig, generate_tpox
from repro.workloads.xmark_queries import XMARK_QUERIES

__all__ = [
    "CorpusConfig",
    "DBLPConfig",
    "DEFAULT_TENANTS",
    "PAPER_QUERIES",
    "PaperQuery",
    "SoakConfig",
    "TPOX_QUERIES",
    "TPoXConfig",
    "TenantProfile",
    "XMARK_QUERIES",
    "XMarkConfig",
    "dblp_corpus",
    "format_soak_report",
    "generate_dblp",
    "generate_tpox",
    "generate_xmark",
    "run_soak",
    "xmark_corpus",
]
