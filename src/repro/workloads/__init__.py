"""Benchmark workloads: scalable XMark- and DBLP-like document
generators plus the paper's query set (Q1, Q2 of Sections 2.4/4 and
Q3–Q6 of Table 8)."""

from repro.workloads.xmark import XMarkConfig, generate_xmark
from repro.workloads.dblp import DBLPConfig, generate_dblp
from repro.workloads.corpus import CorpusConfig, dblp_corpus, xmark_corpus
from repro.workloads.queries import PAPER_QUERIES, PaperQuery
from repro.workloads.tpox import TPOX_QUERIES, TPoXConfig, generate_tpox
from repro.workloads.xmark_queries import XMARK_QUERIES

__all__ = [
    "CorpusConfig",
    "DBLPConfig",
    "PAPER_QUERIES",
    "PaperQuery",
    "TPOX_QUERIES",
    "TPoXConfig",
    "XMARK_QUERIES",
    "XMarkConfig",
    "dblp_corpus",
    "generate_dblp",
    "generate_tpox",
    "generate_xmark",
    "xmark_corpus",
]
