"""TPoX-like transaction-processing workload (paper [17]).

The paper reports query execution improvements "for popular XQuery
benchmarks, e.g., XMark or the query section of TPoX".  TPoX models a
financial brokerage: customer/account documents, orders, and security
descriptions.  This generator produces one document per collection
(hosted together in one store), and :data:`TPOX_QUERIES` lists the
TPoX query-section workloads expressible in the workhorse fragment —
point lookups by id/symbol, range scans over prices, and
account/holding joins.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.workloads.queries import PaperQuery
from repro.xmltree.model import DocumentNode, ElementNode, TextNode

_SECTORS = ("Energy", "Finance", "Technology", "Utilities", "Healthcare")
_NAMES = (
    "Amber Bates Chan Dietz Evans Fox Gupta Hart Ibanez Jones Katz "
    "Lopez Mori Nolan Ochoa Patel Quinn Ross Shaw Tran"
).split()


@dataclass
class TPoXConfig:
    """Collection sizes, expressed through one scale ``factor``.

    At ``factor=1.0`` the counts approximate TPoX scale XS
    (50k customers / 500k orders / 20k securities).
    """

    factor: float = 0.001
    seed: int = 13

    @property
    def customers(self) -> int:
        return max(5, int(50_000 * self.factor))

    @property
    def orders(self) -> int:
        return max(10, int(500_000 * self.factor))

    @property
    def securities(self) -> int:
        return max(5, int(20_000 * self.factor))


def _elem(tag: str, text: str | None = None, **attrs: str) -> ElementNode:
    element = ElementNode(tag)
    for name, value in attrs.items():
        element.set_attribute(name, value)
    if text is not None:
        element.append(TextNode(text))
    return element


def generate_tpox(
    config: TPoXConfig | None = None,
) -> dict[str, DocumentNode]:
    """Build the three TPoX collections as one document each:
    ``custacc.xml``, ``order.xml``, ``security.xml``."""
    cfg = config or TPoXConfig()
    rng = random.Random(cfg.seed)

    # -- securities ---------------------------------------------------
    securities = ElementNode("securities")
    symbols = []
    for i in range(cfg.securities):
        symbol = f"SYM{i:04d}"
        symbols.append(symbol)
        security = _elem("security", id=f"sec{i}")
        security.append(_elem("symbol", symbol))
        security.append(_elem("name", f"{rng.choice(_NAMES)} Industries"))
        security.append(_elem("sector", rng.choice(_SECTORS)))
        price = _elem("price")
        price.append(_elem("lastTrade", f"{rng.uniform(2, 900):.2f}"))
        price.append(_elem("open", f"{rng.uniform(2, 900):.2f}"))
        security.append(price)
        securities.append(security)

    # -- customers with accounts and holdings --------------------------
    customers = ElementNode("customers")
    account_ids = []
    for i in range(cfg.customers):
        customer = _elem("customer", id=f"cust{i}")
        name = _elem("name")
        name.append(_elem("first", rng.choice(_NAMES)))
        name.append(_elem("last", rng.choice(_NAMES)))
        customer.append(name)
        customer.append(
            _elem("nationality", rng.choice(("US", "DE", "NL", "JP")))
        )
        for j in range(rng.randint(1, 2)):
            account_id = f"acct{i}-{j}"
            account_ids.append(account_id)
            account = _elem("account", id=account_id)
            account.append(_elem("balance", f"{rng.uniform(0, 90000):.2f}"))
            account.append(_elem("currency", "USD"))
            for _ in range(rng.randint(0, 3)):
                holding = _elem("holding", symbol=rng.choice(symbols))
                holding.append(_elem("quantity", str(rng.randint(1, 500))))
                account.append(holding)
            customer.append(account)
        customers.append(customer)

    # -- orders ----------------------------------------------------------
    orders = ElementNode("orders")
    for i in range(cfg.orders):
        order = _elem("order", id=f"ord{i}")
        order.append(_elem("account", rng.choice(account_ids)))
        order.append(_elem("symbol", rng.choice(symbols)))
        order.append(_elem("type", rng.choice(("buy", "sell"))))
        order.append(_elem("quantity", str(rng.randint(1, 1000))))
        order.append(_elem("limit", f"{rng.uniform(1, 950):.2f}"))
        orders.append(order)

    out = {}
    for uri, root in (
        ("custacc.xml", customers),
        ("order.xml", orders),
        ("security.xml", securities),
    ):
        document = DocumentNode(uri)
        document.append(root)
        out[uri] = document
    return out


#: TPoX query-section workloads expressible in the workhorse fragment
TPOX_QUERIES: dict[str, PaperQuery] = {
    "T1": PaperQuery(
        name="T1",
        document="tpox",
        text='doc("custacc.xml")//customer[@id = "cust1"]/name/last',
        description="TPoX get_cust_profile: customer point lookup",
    ),
    "T2": PaperQuery(
        name="T2",
        document="tpox",
        text='doc("security.xml")//security[symbol = "SYM0002"]/price/lastTrade',
        description="TPoX get_security_price: symbol point lookup",
    ),
    "T3": PaperQuery(
        name="T3",
        document="tpox",
        text='doc("security.xml")//security[price/lastTrade > 800]/symbol',
        description="TPoX search_securities: price range scan",
    ),
    "T4": PaperQuery(
        name="T4",
        document="tpox",
        text="""
            for $o in doc("order.xml")//order,
                $s in doc("security.xml")//security
            where $o/symbol = $s/symbol and $s/sector = "Energy"
            return $o/@id
        """,
        description="TPoX order/security join restricted to a sector",
    ),
    "T5": PaperQuery(
        name="T5",
        document="tpox",
        text="""
            for $c in doc("custacc.xml")//customer,
                $h in $c/account/holding,
                $s in doc("security.xml")//security
            where $h/@symbol = $s/symbol and $s/price/lastTrade > 800
            return $c/name/last
        """,
        description="TPoX customers holding expensive securities "
        "(cross-document value join)",
    ),
}
