"""The shard-scaling collection benchmark (``BENCH_collection.json``).

Measures the scatter-gather claim of the sharded store on a
multi-document XMark corpus: one compiled ``collection()`` plan fanned
out across N per-shard ``doc`` tables beats the same plan against one
combined table hosting every document — *even serially* — because the
path-step self-joins the join graph hands SQLite get superlinearly
more expensive as the table grows (the name-indexed candidate sets of
every step are corpus-wide, while the answers are document-local).
Sharding keeps each probe against a table a fraction of the size.

The grid:

1. **Serial baseline** — a bare :class:`XQueryProcessor` over one
   combined table hosting the whole corpus, repeated executions of the
   query set.
2. **Shard curve** — the same repeated workload through
   :class:`ShardedService` at several shard counts (1 shard = the
   degenerate scatter over one full-size table).

Every configuration's *items* and *serialized text* are verified
against the serial baseline before any number is reported — the
benchmark doubles as a differential test.  Each grid point also
reports per-call latency percentiles (p50/p90/p95/p99 in
milliseconds) from the best timed trial, so the shard curve shows
tail latency next to throughput.  The curve can run under either
shard executor (``executor="thread"`` or ``"process"`` — see
``docs/performance.md``); every point records which one produced it,
whether the fan-out dispatched in parallel, and its absolute
``queries_per_second``/``speedup`` next to the relative speedups.
``benchmarks/bench_collection.py`` and ``repro serve-bench
--collection`` are thin wrappers over :func:`run_collection_bench`;
the emitted document is ``repro.bench.collection/v3`` (see
``docs/schemas.md``).
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable, Mapping, Sequence

from repro.obs import Histogram, latency_summary_ms
from repro.pipeline import XQueryProcessor
from repro.service.scatter import ShardedService
from repro.store import Collection
from repro.workloads.corpus import CorpusConfig, xmark_corpus
from repro.xmltree.serializer import serialize

__all__ = [
    "DEFAULT_COLLECTION_QUERIES",
    "format_collection_bench",
    "run_collection_bench",
]

SCHEMA = "repro.bench.collection/v3"

#: Predicate-heavy multi-step shapes: each step's candidate set is
#: corpus-wide under a combined table, so per-document cost grows with
#: total corpus size and sharding pays off.  All end in a location
#: step after the predicate, keeping them scatter-safe (document-
#: ordered result).
DEFAULT_COLLECTION_QUERIES: Mapping[str, str] = {
    "CX1": 'collection()//closed_auction[itemref/@item = "item3"]/price',
    "CX2": 'collection()//person[address/country = "United States"]/name',
    "CX3": 'collection()//open_auction[bidder/increase > 25]/seller',
    "CX4": 'collection()//closed_auction[price > 500]/itemref',
}


def _corpus_texts(config: CorpusConfig) -> list[tuple[str, str]]:
    return [
        (serialize(tree), tree.uri) for tree in xmark_corpus(config)
    ]


def _serial_baseline(
    texts: Sequence[tuple[str, str]],
    queries: Mapping[str, str],
    repeat: int,
) -> tuple[float, Histogram, dict[str, Any], int]:
    """One combined table, bare processor:
    (seconds, latency, references, rows)."""
    processor = XQueryProcessor()
    for text, uri in texts:
        processor.load(text, uri)
    reference: dict[str, Any] = {}
    # warm: compile + backend bulk load happen outside the timed window
    processor.backend
    for name, query in queries.items():
        items = processor.execute(query)
        reference[name] = (list(items), processor.serialize(items))
    compiled = {name: processor.compile(q) for name, q in queries.items()}

    def workload(latency: Histogram) -> None:
        for _ in range(repeat):
            for name in queries:
                call_start = time.perf_counter_ns()
                processor.execute(compiled[name])
                latency.observe(time.perf_counter_ns() - call_start)

    seconds, latency = _best_of_trials(workload)
    return seconds, latency, reference, len(processor.store.table)


#: timed loops run this many times; the minimum is reported.  A single
#: hot loop is hostage to scheduler noise on the shared CI host — the
#: minimum across trials is the standard estimator for the true cost.
TRIALS = 3


def _best_of_trials(
    workload: Callable[[Histogram], None],
) -> tuple[float, Histogram]:
    """Run ``workload`` TRIALS times; return the fastest window's
    elapsed seconds together with that window's per-call latency
    histogram (the same trial answers both questions — a mixed pick
    would pair a fast total with a slow tail)."""
    best = float("inf")
    best_latency = Histogram()
    for _ in range(TRIALS):
        latency = Histogram()
        start = time.perf_counter()
        workload(latency)
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
            best_latency = latency
    return best, best_latency


def _shard_point(
    texts: Sequence[tuple[str, str]],
    queries: Mapping[str, str],
    reference: dict[str, Any],
    repeat: int,
    shards: int,
    executor: str = "thread",
) -> dict[str, Any]:
    """One shard count: verify against the baseline, then time."""
    with ShardedService(Collection(shards), executor=executor) as service:
        # pinned round-robin placement: on a small corpus, hash
        # placement variance would dominate the scaling signal the
        # benchmark exists to measure (large corpora converge to
        # balance on their own)
        for index, (text, uri) in enumerate(texts):
            service.load(text, uri, shard=index % shards)
        fanout: dict[str, int] = {}
        for name, query in queries.items():
            result = service.execute(query)
            expected_items, expected_text = reference[name]
            if list(result) != expected_items:
                raise AssertionError(
                    f"shards={shards}: items diverge from the serial "
                    f"baseline for query {name!r}"
                )
            if service.serialize(result) != expected_text:
                raise AssertionError(
                    f"shards={shards}: serialization diverges from the "
                    f"serial baseline for query {name!r}"
                )
            fanout[name] = result.shards

        def workload(latency: Histogram) -> None:
            for _ in range(repeat):
                for query in queries.values():
                    call_start = time.perf_counter_ns()
                    service.execute(query)
                    latency.observe(time.perf_counter_ns() - call_start)

        seconds, latency = _best_of_trials(workload)
        placement = [
            entry["documents"]
            for entry in service.collection.stats()["per_shard"]
        ]
        parallel = bool(service.parallel_fanout) and shards > 1
    calls = repeat * len(queries)
    return {
        "shards": shards,
        "seconds": seconds,
        "executor": executor,
        "parallel": parallel,
        "queries_per_second": calls / seconds if seconds else 0.0,
        "latency_ms": latency_summary_ms(latency),
        "fanout": fanout,
        "documents_per_shard": placement,
    }


def run_collection_bench(
    documents: int = 8,
    factor: float = 0.02,
    repeat: int = 5,
    shards: Sequence[int] = (1, 2, 4),
    queries: Mapping[str, str] = DEFAULT_COLLECTION_QUERIES,
    seed: int = 42,
    quick: bool = False,
    executor: str = "thread",
) -> dict[str, Any]:
    """Run the whole grid; returns the ``BENCH_collection.json`` document.

    ``quick`` shrinks the corpus and repeat count to CI-smoke size
    (seconds, not minutes) while keeping every verification.
    ``executor`` selects the shard execution mode for every curve
    point (``"thread"`` or ``"process"`` — the curve's results are
    byte-identical either way; only the seconds move).
    """
    if executor not in ("thread", "process"):
        raise ValueError(
            f"executor must be 'thread' or 'process', got {executor!r}"
        )
    if quick:
        factor = min(factor, 0.005)
        repeat = min(repeat, 2)
    texts = _corpus_texts(
        CorpusConfig(documents=documents, factor=factor, seed=seed)
    )
    calls = repeat * len(queries)
    serial_s, serial_latency, reference, rows = _serial_baseline(
        texts, queries, repeat
    )
    curve = [
        _shard_point(texts, queries, reference, repeat, n, executor)
        for n in shards
    ]
    by_shards = {point["shards"]: point["seconds"] for point in curve}
    base = by_shards.get(1, serial_s)
    for point in curve:
        # `speedup` is the headline number (vs the serial combined
        # table); the *_vs_* fields keep both denominators explicit
        point["speedup"] = (
            serial_s / point["seconds"] if point["seconds"] else float("inf")
        )
        point["speedup_vs_1_shard"] = (
            base / point["seconds"] if point["seconds"] else float("inf")
        )
        point["speedup_vs_serial"] = point["speedup"]
    return {
        "schema": SCHEMA,
        "metadata": {
            "workload": "xmark-corpus",
            "documents": documents,
            "factor": factor,
            "seed": seed,
            "rows": rows,
            "queries": dict(queries),
            "repeat": repeat,
            "trials": TRIALS,
            "calls_per_mode": calls,
            "placement": "round-robin",
            "executor": executor,
            "cpu_count": os.cpu_count(),
            "quick": quick,
        },
        "serial_baseline": {
            "seconds": serial_s,
            "queries_per_second": calls / serial_s if serial_s else 0.0,
            "latency_ms": latency_summary_ms(serial_latency),
        },
        "curve": curve,
    }


def format_collection_bench(report: dict[str, Any]) -> str:
    """Human-readable rendering of the benchmark document."""
    meta = report["metadata"]
    serial = report["serial_baseline"]

    def pct(mode: dict[str, Any]) -> str:
        latency = mode.get("latency_ms")
        if not latency or not latency.get("count"):
            return ""
        return (
            f"   p50 {latency['p50']:.2f} / p95 {latency['p95']:.2f} / "
            f"p99 {latency['p99']:.2f} ms"
        )

    lines = [
        f"collection bench — {meta['documents']} xmark docs @ factor "
        f"{meta['factor']} ({meta['rows']} rows), "
        f"{meta['calls_per_mode']} calls/mode, "
        f"{meta.get('executor', 'thread')} executor",
        f"  serial baseline  : {serial['seconds']:8.3f}s "
        f"({serial['queries_per_second']:.1f} q/s){pct(serial)}",
    ]
    for point in report["curve"]:
        lines.append(
            f"  {point['shards']:2d} shard(s)      : "
            f"{point['seconds']:8.3f}s "
            f"({point.get('queries_per_second', 0.0):6.1f} q/s)  "
            f"{point['speedup_vs_1_shard']:5.2f}x vs 1 shard   "
            f"{point.get('speedup', point['speedup_vs_serial']):5.2f}x vs "
            "serial   "
            f"docs/shard {point['documents_per_shard']}{pct(point)}"
        )
    return "\n".join(lines)
