"""Benchmark harness: one place that wires every engine to the paper's
workloads so the ``benchmarks/`` suite can regenerate each table and
figure of the evaluation section."""

from repro.bench.harness import (
    BenchHarness,
    EngineRun,
    format_table9,
    table9_json,
)

__all__ = ["BenchHarness", "EngineRun", "format_table9", "table9_json"]
