"""Benchmark harness: one place that wires every engine to the paper's
workloads so the ``benchmarks/`` suite can regenerate each table and
figure of the evaluation section."""

from repro.bench.harness import BenchHarness, EngineRun

__all__ = ["BenchHarness", "EngineRun"]
