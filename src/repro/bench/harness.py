"""Multi-engine benchmark harness (paper Section 4).

One :class:`BenchHarness` hosts the XMark and DBLP instances and every
execution engine of the repository:

===================  ====================================================
engine               corresponds to (Table 9 column)
===================  ====================================================
``stacked-sql``      DB2 + Pathfinder, *stacked* (pre-isolation) SQL
``joingraph-sql``    DB2 + Pathfinder, *join graph* SQL
``planner``          the same join graph on our own optimizer/engine
``purexml-whole``    DB2 pureXML, whole-document storage
``purexml-segmented`` DB2 pureXML, segmented storage + XMLPATTERN indexes
``interpreter``      algebra reference interpreter (ground truth)
===================  ====================================================

Every run is verified against the reference result (as a multiset of
``pre`` ranks) before its wall-clock time is reported.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field

from repro.infoset.encoding import DocumentStore, node_pre_map
from repro.obs import Tracer, get_tracer, phase_profile, set_tracer
from repro.pipeline import XQueryProcessor
from repro.planner import JoinGraphPlanner
from repro.purexml import PureXMLEngine
from repro.sql import flatten_query
from repro.workloads import (
    DBLPConfig,
    PAPER_QUERIES,
    PaperQuery,
    XMarkConfig,
    generate_dblp,
    generate_xmark,
)

#: XMLPATTERN indexes created for the segmented pureXML setups, per the
#: paper's "extensive XMLPATTERN index family" (Section 4.2)
XMARK_PATTERNS = (
    "/site/people/person/@id",
    "/site/categories/category/@id",
    "/site/regions//item/@id",
)
DBLP_PATTERNS = ("/dblp/*/@key",)

ENGINES = (
    "stacked-sql",
    "joingraph-sql",
    "planner",
    "purexml-whole",
    "purexml-segmented",
    "interpreter",
)


@dataclass
class EngineRun:
    """Outcome of one engine executing one query."""

    query: str
    engine: str
    seconds: float
    result_size: int
    correct: bool
    #: inclusive seconds per span name (``compile``, ``isolate``,
    #: ``execute``, ``sql.run`` …) captured by the tracer during the
    #: timed run; compile-side phases appear on the first (cache-cold)
    #: run of each query
    phases: dict[str, float] = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "query": self.query,
            "engine": self.engine,
            "seconds": self.seconds,
            "result_size": self.result_size,
            "correct": self.correct,
            "phases": self.phases,
        }


class BenchHarness:
    """Builds both workloads once and runs any query on any engine."""

    def __init__(
        self,
        xmark_factor: float = 0.01,
        dblp_factor: float = 0.002,
        serialize_step: bool = False,
    ):
        self.xmark_doc = generate_xmark(XMarkConfig(factor=xmark_factor))
        self.dblp_doc = generate_dblp(DBLPConfig(factor=dblp_factor))
        self.stores = {"xmark": DocumentStore(), "dblp": DocumentStore()}
        self.stores["xmark"].load_tree(self.xmark_doc)
        self.stores["dblp"].load_tree(self.dblp_doc)
        self.pre_maps = {
            "xmark": node_pre_map(self.xmark_doc, 0),
            "dblp": node_pre_map(self.dblp_doc, 0),
        }
        self.processors = {
            "xmark": XQueryProcessor(
                store=self.stores["xmark"],
                default_doc="auction.xml",
                serialize_step=serialize_step,
            ),
            "dblp": XQueryProcessor(
                store=self.stores["dblp"],
                default_doc="dblp.xml",
                serialize_step=serialize_step,
            ),
        }
        self.planners = {
            key: JoinGraphPlanner(self.stores[key].table)
            for key in ("xmark", "dblp")
        }
        self.native_whole = {
            "xmark": PureXMLEngine({"auction.xml": self.xmark_doc}),
            "dblp": PureXMLEngine({"dblp.xml": self.dblp_doc}),
        }
        self.native_segmented = {
            "xmark": PureXMLEngine(
                {"auction.xml": self.xmark_doc},
                segmented=True,
                cut_depth=2,
                patterns=XMARK_PATTERNS,
            ),
            "dblp": PureXMLEngine(
                {"dblp.xml": self.dblp_doc},
                segmented=True,
                cut_depth=1,
                patterns=DBLP_PATTERNS,
            ),
        }
        self._compiled: dict[tuple[str, bool], object] = {}

    # -- helpers -----------------------------------------------------------

    def query(self, name: str) -> PaperQuery:
        return PAPER_QUERIES[name]

    def node_count(self, workload: str) -> int:
        return len(self.stores[workload].table)

    def compiled(self, query: PaperQuery):
        key = (query.name, query.is_tuple)
        if key not in self._compiled:
            processor = self.processors[query.document]
            if query.is_tuple:
                self._compiled[key] = processor.compile_tuple(query.text)
            else:
                self._compiled[key] = processor.compile(query.text)
        return self._compiled[key]

    def reference(self, query: PaperQuery) -> Counter:
        """Ground-truth result multiset (reference interpreter)."""
        processor = self.processors[query.document]
        compiled = self.compiled(query)
        if query.is_tuple:
            out: Counter = Counter()
            for component in compiled:
                out.update(processor.execute(component, engine="interpreter"))
            return out
        return Counter(processor.execute(compiled, engine="interpreter"))

    # -- execution ----------------------------------------------------------

    def execute(self, query_name: str, engine: str) -> Counter:
        """Run one query on one engine; returns the result multiset of
        ``pre`` ranks."""
        query = self.query(query_name)
        processor = self.processors[query.document]
        if engine in ("stacked-sql", "joingraph-sql", "interpreter"):
            compiled = self.compiled(query)
            if query.is_tuple:
                out: Counter = Counter()
                for component in compiled:
                    out.update(processor.execute(component, engine=engine))
                return out
            return Counter(processor.execute(compiled, engine=engine))
        if engine == "planner":
            compiled = self.compiled(query)
            planner = self.planners[query.document]
            components = compiled if query.is_tuple else [compiled]
            out = Counter()
            for component in components:
                flat = flatten_query(component.isolated_plan)
                out.update(planner.plan(flat).execute())
            return out
        if engine in ("purexml-whole", "purexml-segmented"):
            native = (
                self.native_whole[query.document]
                if engine == "purexml-whole"
                else self.native_segmented[query.document]
            )
            pre_map = self.pre_maps[query.document]
            return Counter(pre_map[id(n)] for n in native.run(query.text))
        raise ValueError(f"unknown engine {engine!r}")

    def run(self, query_name: str, engine: str) -> EngineRun:
        """Timed, verified execution.  The run happens under a private
        tracer, so the returned :class:`EngineRun` carries the
        per-phase time breakdown alongside the total wall-clock."""
        query = self.query(query_name)
        previous = get_tracer()
        tracer = set_tracer(Tracer())
        try:
            # warm the compile cache inside the trace but outside the
            # timed window: `seconds` stays pure execution time, while
            # `phases` gains the compile-side spans on cache-cold runs
            self.compiled(query)
            start = time.perf_counter()
            result = self.execute(query_name, engine)
            elapsed = time.perf_counter() - start
        finally:
            set_tracer(previous)
        reference = self.reference(query)
        return EngineRun(
            query=query_name,
            engine=engine,
            seconds=elapsed,
            result_size=sum(result.values()),
            correct=result == reference,
            phases=phase_profile(tracer),
        )

    def table9(
        self,
        queries: tuple[str, ...] = ("Q1", "Q2", "Q3", "Q4", "Q5", "Q6"),
        engines: tuple[str, ...] = (
            "stacked-sql",
            "joingraph-sql",
            "purexml-whole",
            "purexml-segmented",
        ),
    ) -> list[EngineRun]:
        """The full Table 9 grid."""
        return [self.run(q, e) for q in queries for e in engines]


def table9_json(runs: list[EngineRun], shards: int = 1, **metadata) -> dict:
    """The Table 9 grid as a JSON-ready document (what ``BENCH_*.json``
    files store): every run with its phase profile, plus free-form
    metadata (node counts, scale factors, host notes).  ``shards``
    records the store layout the runs executed against (v3; 1 = a
    single combined backend, see ``docs/schemas.md``)."""
    return {
        "schema": "repro.bench.table9/v3",
        "shards": shards,
        "metadata": dict(metadata),
        "runs": [run.to_json() for run in runs],
    }


def format_table9(runs: list[EngineRun]) -> str:
    """Render Table 9-style rows (query x engine, seconds)."""
    engines = []
    for run in runs:
        if run.engine not in engines:
            engines.append(run.engine)
    queries = []
    for run in runs:
        if run.query not in queries:
            queries.append(run.query)
    by_key = {(r.query, r.engine): r for r in runs}
    header = f"{'Query':8}{'# items':>9}" + "".join(
        f"{e:>20}" for e in engines
    )
    lines = [header, "-" * len(header)]
    for query in queries:
        any_run = next(r for r in runs if r.query == query)
        cells = ""
        for engine in engines:
            run = by_key.get((query, engine))
            if run is None:
                cells += f"{'-':>20}"
            else:
                mark = "" if run.correct else " !"
                cells += f"{run.seconds:>18.3f}s{mark}"
        lines.append(f"{query:8}{any_run.result_size:>9}" + cells)
    return "\n".join(lines)
