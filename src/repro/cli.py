"""Command-line interface: ``python -m repro``.

Examples
--------
Run a query against a document::

    python -m repro 'doc("auction.xml")//open_auction[bidder]' \\
        --doc auction.xml

Show the generated single-block SQL instead of executing::

    python -m repro '//closed_auction[price > 500]' --doc auction.xml --sql

Explain the physical plan our optimizer would choose::

    python -m repro '//closed_auction[price > 500]' --doc auction.xml --explain

Generate a built-in benchmark document::

    python -m repro --generate xmark --factor 0.01 > auction.xml

Statically analyze a query (or the whole built-in workload corpus)
with the plan sanitizer, deep invariant checker and SQL linter::

    python -m repro lint '//closed_auction[price > 500]' --doc auction.xml
    python -m repro lint --workloads

Decide query containment / equivalence statically over the tree-pattern
fragment (see ``docs/containment.md``); exit status 0 = holds,
1 = not shown, 2 = outside the fragment::

    python -m repro analyze --contains '//b' '/a/b' --default-doc d.xml
    python -m repro analyze --equivalent '//a[b][c]' '//a[c][b]' \\
        --default-doc d.xml
    python -m repro analyze --canonical '//a[c][b]' --default-doc d.xml

Observability (see ``docs/observability.md``): ``--trace FILE`` writes
a Chrome trace-event JSON file (load in ``about://tracing`` or
Perfetto) with nested spans for every pipeline phase — parse,
normalize, loop-lift, isolation (with one instant event per
rewrite-rule application), codegen, and SQL execution.  ``--metrics
[FILE]`` dumps the metrics registry (rule-fire counters, SQL statement
stats, per-operator planner q-error) as JSON to FILE, or to stdout
when no FILE is given.  The ``obs`` subcommand runs a query under full
instrumentation and prints the composed summary — span tree, hot
rewrite rules, SQL stats, the planner estimate-vs-actual q-error
table, and analysis health::

    python -m repro '//person[name]' --doc auction.xml \\
        --trace trace.json --metrics metrics.json
    python -m repro obs '//person[name]' --doc auction.xml --checked

Benchmark the query service layer (compiled-plan cache + concurrent
shared-cache SQLite pool, see ``docs/performance.md``)::

    python -m repro serve-bench --quick
    python -m repro serve-bench --factor 0.01 --workers 1,2,4,8 \\
        --out BENCH_service.json

Chaos mode (see ``docs/robustness.md``): inject backend faults at a
configured error rate while 8 threads hammer the service, and verify
the robustness contract — every call returns a correct answer or a
clean typed error, and every injected fault is accounted for as
retried, degraded, or surfaced::

    python -m repro serve-bench --faults --fault-rate 0.15 --fault-seed 7 \\
        --out CHAOS_report.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import replace
from pathlib import Path

from repro.engines import Engine
from repro.errors import ReproError
from repro.obs import (
    MetricsRegistry,
    Tracer,
    get_metrics,
    get_tracer,
    metrics_json,
    set_metrics,
    set_tracer,
    write_chrome_trace,
)
from repro.pipeline import XQueryProcessor


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="A relational XQuery processor (EDBT 2010 reproduction): "
        "compiles the XQuery workhorse fragment into join graph SQL.",
    )
    parser.add_argument("query", nargs="?", help="XQuery expression")
    parser.add_argument(
        "--doc",
        action="append",
        default=[],
        metavar="FILE[=URI]",
        help="XML document to load; URI defaults to the file name. "
        "May be given several times.",
    )
    parser.add_argument(
        "--engine",
        default=Engine.JOINGRAPH_SQL.value,
        choices=[engine.value for engine in Engine] + ["planner"],
        help="execution engine (default: the isolated single SQL block)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="serve the documents from an N-shard collection with "
        "scatter-gather execution (default: 1, a single backend)",
    )
    parser.add_argument(
        "--sql", action="store_true", help="print the join graph SQL and exit"
    )
    parser.add_argument(
        "--stacked-sql",
        action="store_true",
        help="print the pre-isolation CTE chain and exit",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="print the cost-based physical plan and exit",
    )
    parser.add_argument(
        "--plan",
        action="store_true",
        help="print the isolated algebra plan and exit",
    )
    parser.add_argument(
        "--items",
        action="store_true",
        help="print result pre ranks instead of serialized XML",
    )
    parser.add_argument(
        "--time", action="store_true", help="report execution wall-clock"
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="write a Chrome trace-event JSON file of the whole run "
        "(open in about://tracing or ui.perfetto.dev)",
    )
    parser.add_argument(
        "--metrics",
        nargs="?",
        const="-",
        metavar="FILE",
        help="dump the metrics registry (rule fires, SQL stats, planner "
        "q-error) as JSON to FILE, or to stdout when FILE is omitted",
    )
    parser.add_argument(
        "--serialize-step",
        action="store_true",
        help="make the serialization point explicit "
        "(append /descendant-or-self::node(), as in the paper's Section 4)",
    )
    parser.add_argument(
        "--generate",
        choices=["xmark", "dblp"],
        help="emit a benchmark document to stdout instead of querying",
    )
    parser.add_argument(
        "--factor", type=float, default=0.01, help="generator scale factor"
    )
    parser.add_argument(
        "--seed", type=int, default=42, help="generator random seed"
    )
    return parser


def build_lint_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Static analysis: compile with the per-step rewrite "
        "sanitizer, deep-check plan invariants, lint the generated SQL, "
        "and differentially execute all engines.  Reports JGI diagnostic "
        "codes (see docs/analysis.md); exit status 1 on any error.",
    )
    parser.add_argument("query", nargs="?", help="XQuery expression to lint")
    parser.add_argument(
        "--doc",
        action="append",
        default=[],
        metavar="FILE[=URI]",
        help="XML document to load; URI defaults to the file name. "
        "May be given several times.",
    )
    parser.add_argument(
        "--workloads",
        action="store_true",
        help="sweep the complete built-in query corpus (paper Q1-Q6, "
        "XMark, TPoX) over freshly generated documents",
    )
    parser.add_argument(
        "--interpret",
        action="store_true",
        help="also re-interpret the plan after every rewrite step and "
        "compare against the pre-isolation reference (slow)",
    )
    parser.add_argument(
        "--data",
        action="store_true",
        help="verify inferred const/key/set properties against actual "
        "interpreted rows at every operator (slow)",
    )
    parser.add_argument(
        "--no-execute",
        action="store_true",
        help="skip the differential execution across engines",
    )
    parser.add_argument(
        "--factor", type=float, default=0.002,
        help="XMark scale factor for --workloads (default: 0.002)",
    )
    return parser


def lint_main(argv: list[str]) -> int:
    parser = build_lint_parser()
    args = parser.parse_args(argv)
    sys.setrecursionlimit(100_000)

    from repro.analysis import lint_query, lint_workloads
    from repro.analysis.diagnostics import DiagnosticReport

    if args.workloads:
        if args.query or args.doc:
            parser.error("--workloads does not take a query or --doc")
        report = lint_workloads(
            xmark_factor=args.factor,
            interpret=args.interpret,
            data=args.data,
            execute=not args.no_execute,
        )
    else:
        if not args.query:
            parser.error("a query is required (or use --workloads)")
        if not args.doc:
            parser.error("at least one --doc FILE is required")
        processor = XQueryProcessor(
            checked=True, check_interpret=args.interpret
        )
        try:
            for spec in args.doc:
                path, _, uri = spec.partition("=")
                processor.load(Path(path).read_text(), uri or Path(path).name)
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        result = lint_query(
            processor,
            args.query,
            data=args.data,
            execute=not args.no_execute,
        )
        report = DiagnosticReport()
        report.add(result.name, result.diagnostics)

    print(report.render())
    return 1 if report.error_count else 0


def build_analyze_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro analyze",
        description="Static containment / equivalence analysis over the "
        "workhorse tree-pattern fragment (see docs/containment.md).  "
        "Verdicts are sound: 'contains'/'equivalent' ships a re-checked "
        "homomorphism witness; 'not-shown' means not proven, and "
        "'outside-fragment' means no claim.  Exit status: 0 when the "
        "property holds, 1 when not shown, 2 when outside the fragment.",
    )
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--contains",
        nargs=2,
        metavar=("P", "Q"),
        help="decide whether P's result contains Q's on every store",
    )
    group.add_argument(
        "--equivalent",
        nargs=2,
        metavar=("P", "Q"),
        help="decide whether P and Q are result-identical on every store",
    )
    group.add_argument(
        "--canonical",
        metavar="Q",
        help="print Q's canonical tree-pattern cache key",
    )
    parser.add_argument(
        "--default-doc",
        metavar="URI",
        default="doc.xml",
        help="URI that absolute paths (/a/b) resolve against; the "
        "analysis is static, so both queries sharing this synthetic "
        "default is sound (default: doc.xml)",
    )
    parser.add_argument(
        "--collection",
        action="append",
        default=[],
        metavar="URI",
        help="declare a collection() member URI (repeatable); "
        "collection() globs resolve against these",
    )
    return parser


def analyze_main(argv: list[str]) -> int:
    parser = build_analyze_parser()
    args = parser.parse_args(argv)
    sys.setrecursionlimit(100_000)

    from fnmatch import fnmatchcase

    from repro.analysis.containment import (
        CONTAINS,
        EQUIVALENT,
        OUTSIDE_FRAGMENT,
        canonicalize,
        contains,
        equivalent,
        extract_pattern,
        pattern_key,
    )
    from repro.xquery.normalize import normalize
    from repro.xquery.parser import parse_xquery

    members = tuple(args.collection)

    def resolve(patterns: tuple[str, ...]) -> tuple[str, ...]:
        if not patterns:
            return members
        return tuple(
            uri
            for uri in members
            if any(fnmatchcase(uri, pattern) for pattern in patterns)
        )

    def core_of(query: str):
        return normalize(
            parse_xquery(query),
            default_doc=args.default_doc,
            collections=resolve,
        )

    try:
        if args.canonical is not None:
            pattern = extract_pattern(core_of(args.canonical))
            if pattern is None:
                print("outside-fragment")
                return 2
            print(pattern_key(canonicalize(pattern)))
            return 0
        if args.contains is not None:
            result = contains(core_of(args.contains[0]), core_of(args.contains[1]))
            print(result.verdict)
            if result.witness is not None:
                witness = " ".join(f"{p}->{q}" for p, q in result.witness)
                print(f"witness: {witness or '(empty pattern)'}")
            if result.verdict == CONTAINS:
                return 0
            return 2 if result.verdict == OUTSIDE_FRAGMENT else 1
        result = equivalent(
            core_of(args.equivalent[0]), core_of(args.equivalent[1])
        )
        print(result.verdict)
        for direction, part in (
            ("forward", result.forward),
            ("backward", result.backward),
        ):
            if part.witness is not None:
                witness = " ".join(f"{p}->{q}" for p, q in part.witness)
                print(f"{direction} witness: {witness or '(empty pattern)'}")
        if result.verdict == EQUIVALENT:
            return 0
        return 2 if result.verdict == OUTSIDE_FRAGMENT else 1
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def build_obs_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro obs",
        description="Run one query under full instrumentation and print "
        "the observability summary: span tree (per-phase time), rewrite-"
        "rule fire counts, SQL back-end stats, the planner estimate-vs-"
        "actual q-error table, and analysis health.  See "
        "docs/observability.md.",
    )
    parser.add_argument("query", help="XQuery expression")
    parser.add_argument(
        "--doc",
        action="append",
        default=[],
        metavar="FILE[=URI]",
        help="XML document to load; URI defaults to the file name. "
        "May be given several times.",
    )
    parser.add_argument(
        "--engine",
        default=Engine.JOINGRAPH_SQL.value,
        choices=[engine.value for engine in Engine],
        help="execution engine to run (the planner is always audited)",
    )
    parser.add_argument(
        "--checked",
        action="store_true",
        help="also run the static-analysis suite (per-step sanitizer, "
        "plan checker, SQL linter) and fold its findings into the "
        "analysis-health section",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="serve through a sharded collection of this many shards "
        "(documents place by URI hash; default: 1, single backend)",
    )
    parser.add_argument(
        "--executor",
        choices=("thread", "process"),
        default="thread",
        help="shard execution mode for --shards > 1: 'thread' runs "
        "shard plans in-process, 'process' dispatches to one worker "
        "process per shard over the zero-copy attach — the executor "
        "summary then shows per-worker request/merge counts",
    )
    parser.add_argument(
        "--trace", metavar="FILE", help="also write the Chrome trace JSON"
    )
    parser.add_argument(
        "--metrics", metavar="FILE", help="also write the metrics JSON"
    )
    parser.add_argument(
        "--flight",
        metavar="FILE",
        help="also write the flight-recorder snapshot "
        "(repro.obs.flight/v1 JSON; '-' for stdout)",
    )
    parser.add_argument(
        "--slow",
        action="store_true",
        help="also print the slow-query log (promoted captures with "
        "trace spans and EXPLAIN output)",
    )
    parser.add_argument(
        "--prometheus",
        nargs="?",
        const="-",
        metavar="FILE",
        help="also emit the Prometheus text exposition of every counter "
        "and histogram ('-'/no value for stdout)",
    )
    parser.add_argument(
        "--slow-threshold",
        type=float,
        default=0.25,
        metavar="SECONDS",
        help="flight-recorder slow-query promotion threshold "
        "(default: 0.25s; degraded/surfaced queries always promote)",
    )
    return parser


def obs_main(argv: list[str]) -> int:
    parser = build_obs_parser()
    args = parser.parse_args(argv)
    sys.setrecursionlimit(100_000)

    from repro.obs import audit_plan, record_diagnostics, summary_report
    from repro.planner import JoinGraphPlanner
    from repro.sql import flatten_query

    if not args.doc:
        parser.error("at least one --doc FILE is required")
    if args.shards < 1:
        parser.error("--shards must be >= 1")

    from repro.service import QueryService, ShardedService

    if args.shards > 1:
        from repro.store import Collection

        service: QueryService | ShardedService = ShardedService(
            Collection(args.shards),
            checked=args.checked,
            executor=args.executor,
            slow_threshold_s=args.slow_threshold,
        )
    else:
        service = QueryService(
            checked=args.checked,
            workers=2,
            slow_threshold_s=args.slow_threshold,
        )
    previous_tracer, previous_metrics = get_tracer(), get_metrics()
    tracer = set_tracer(Tracer())
    metrics = set_metrics(MetricsRegistry())
    try:
        for spec in args.doc:
            path, _, uri = spec.partition("=")
            service.load(Path(path).read_text(), uri or Path(path).name)

        # serve the query twice through the service layer: the first
        # call compiles (cache miss), the second hits the compiled-plan
        # cache — both show up in the service-layer section
        items = service.execute(args.query, engine=args.engine)
        service.execute(args.query, engine=args.engine)
        compiled = service.compile(args.query)
        service.serialize(items)
        if isinstance(service, ShardedService):
            table = service.collection.combined_store().table
        else:
            table = service.store.table
        planner = JoinGraphPlanner(table)
        plan = planner.plan(flatten_query(compiled.isolated_plan))
        _, audits = audit_plan(plan)
        if args.checked:
            from repro.analysis import lint_compiled

            record_diagnostics(lint_compiled(compiled))

        if args.trace:
            write_chrome_trace(tracer, args.trace)
        if args.metrics:
            Path(args.metrics).write_text(
                json.dumps(metrics_json(metrics), indent=1) + "\n"
            )
        if args.flight:
            snapshot = json.dumps(service.flight.snapshot(), indent=1) + "\n"
            if args.flight == "-":
                print(snapshot, end="")
            else:
                Path(args.flight).write_text(snapshot)
        if args.prometheus:
            from repro.obs import prometheus_text

            exposition = prometheus_text(metrics, flight=service.flight)
            if args.prometheus == "-":
                print(exposition, end="")
            else:
                Path(args.prometheus).write_text(exposition)
        print(f"-- {len(items)} item(s) [{args.engine}]\n")
        print(summary_report(tracer, metrics, audits))
        print()
        print(_executor_report(service.stats()))
        if args.slow:
            print()
            print(_slow_log_report(service.flight))
        return 0
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        service.close()
        set_tracer(previous_tracer)
        set_metrics(previous_metrics)


def _executor_report(stats: dict) -> str:
    """The executor-mode section of ``repro obs``: which shard
    executor served the query and, for process mode, the per-worker
    request/merge/restart counters — the numbers that make a
    flat-scaling regression diagnosable from the CLI (a worker with
    zero merges never contributed; climbing restarts mean the pool is
    crash-looping)."""
    executor = stats.get("executor", "thread")
    lines = [f"== executor ({executor}) =="]
    procpool = stats.get("procpool")
    if procpool:
        lines.append(
            f"  {len(procpool['workers'])} worker process(es), "
            f"{procpool['workers_per_shard']} per shard"
        )
        for worker in procpool["workers"]:
            # a worker may be mid-restart when the snapshot was cut:
            # its pid is None and counter keys may be absent — report
            # the gap instead of crashing the obs command
            pid = worker.get("pid")
            lines.append(
                f"  {worker.get('worker', '?')}: "
                f"pid {'-' if pid is None else pid} "
                f"alive={worker.get('alive', False)} "
                f"requests {worker.get('requests', 0)} "
                f"merges {worker.get('merges', 0)} "
                f"plans_shipped {worker.get('plans_shipped', 0)} "
                f"restarts {worker.get('restarts', 0)}"
            )
    elif executor == "process":
        lines.append(
            "  worker pool not started (query was served serially)"
        )
    elif "per_shard" in stats:
        lines.append(
            f"  in-process shard threads over {len(stats['per_shard'])} "
            "shard service(s); registry merges happen in-process "
            "(no cross-process snapshots)"
        )
    else:
        lines.append(
            f"  in-process thread pool ({stats.get('workers', '?')} "
            "worker(s)); registry merges happen in-process "
            "(no cross-process snapshots)"
        )
    return "\n".join(lines)


def _slow_log_report(recorder) -> str:
    """Human-readable slow-query log (``repro obs --slow``)."""
    captures = recorder.slow()
    lines = [
        f"== slow-query log ({len(captures)} capture(s), "
        f"threshold {recorder.slow_threshold_s:g}s) =="
    ]
    if not captures:
        lines.append("  (no promoted queries)")
    for capture in captures:
        record = capture.record
        lines.append(
            f"  #{record.seq} [{capture.reason}] {record.engine} "
            f"{record.elapsed_ns / 1e6:.3f} ms cache={record.cache} "
            f"retries={record.retries} degraded={record.degraded} "
            f"rows={record.rows}"
        )
        lines.append(f"    query: {record.query_head}")
        for phase, ns in sorted(record.phases_ns.items()):
            lines.append(f"    phase {phase}: {ns / 1e6:.3f} ms")
        for row in capture.explain:
            lines.append(f"    explain: {row}")
    return "\n".join(lines)


def build_serve_bench_parser() -> argparse.ArgumentParser:
    from repro.service.bench import DEFAULT_QUERY_SET

    parser = argparse.ArgumentParser(
        prog="repro serve-bench",
        description="Benchmark the query service layer: repeated-query "
        "throughput of the compiled-plan cache vs the uncached single-"
        "connection baseline, plus a worker-scaling curve over the "
        "shared-cache SQLite pool.  Writes BENCH_service.json (see "
        "docs/performance.md).",
    )
    parser.add_argument("--factor", type=float, default=0.01,
                        help="XMark scale factor (default: 0.01)")
    parser.add_argument("--repeat", type=int, default=40,
                        help="repetitions of the query mix per mode")
    parser.add_argument(
        "--workers",
        default="1,2,4,8",
        help="comma-separated thread-pool widths (default: 1,2,4,8)",
    )
    parser.add_argument(
        "--queries",
        default=",".join(DEFAULT_QUERY_SET),
        help="comma-separated XMark catalog query names",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smoke-test size: tiny document, few repeats",
    )
    parser.add_argument(
        "--executor",
        choices=("thread", "process"),
        default="thread",
        help="shard/worker execution mode: 'thread' (default) stays "
        "in-process, 'process' runs worker processes over the "
        "zero-copy shard attach (applies to the scaling curve, "
        "--collection, and sharded --faults)",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        help="also write the JSON benchmark document to FILE",
    )
    chaos = parser.add_argument_group(
        "chaos mode (see docs/robustness.md)",
        "run the randomized differential fault-injection campaign "
        "instead of the throughput benchmark; exit status 1 when the "
        "robustness contract (correct-or-typed-error, balanced fault "
        "accounting) is violated",
    )
    chaos.add_argument(
        "--faults", action="store_true",
        help="chaos mode: inject backend faults and check the contract",
    )
    chaos.add_argument(
        "--fault-rate", type=float, default=0.12,
        help="overall injected error rate (default: 0.12)",
    )
    chaos.add_argument(
        "--fault-seed", type=int, default=0,
        help="campaign seed (reproduces a prior run exactly)",
    )
    chaos.add_argument(
        "--threads", type=int, default=8,
        help="chaos worker threads (default: 8)",
    )
    chaos.add_argument(
        "--queries-per-thread", type=int, default=25,
        help="queries per chaos thread (default: 25)",
    )
    chaos.add_argument(
        "--deadline", type=float, default=2.0,
        help="per-query deadline in seconds (default: 2.0)",
    )
    chaos.add_argument(
        "--shards", type=int, default=1,
        help="chaos in sharded mode: storm a ShardedService over this "
        "many shards with collection() queries (default: 1, classic "
        "single-service mode)",
    )
    chaos.add_argument(
        "--documents", type=int, default=4,
        help="corpus size for sharded chaos / collection mode "
        "(default: 4; collection mode default: 8)",
    )
    coll = parser.add_argument_group(
        "collection mode (see docs/performance.md)",
        "run the shard-scaling collection benchmark instead of the "
        "service throughput benchmark; writes the "
        "repro.bench.collection/v3 document",
    )
    coll.add_argument(
        "--collection", action="store_true",
        help="benchmark scatter-gather over a sharded collection",
    )
    coll.add_argument(
        "--shard-curve", default="1,2,4",
        help="comma-separated shard counts for --collection "
        "(default: 1,2,4)",
    )
    soak = parser.add_argument_group(
        "soak mode (see docs/serving.md)",
        "drive the multi-tenant front door with open-loop Poisson "
        "arrivals across a load-multiplier curve; writes the "
        "repro.bench.soak/v1 document; exit status 1 when a soak gate "
        "(knee, fairness, per-tenant fault ledger, differential "
        "byte-identity) fails.  Combine with --faults to run the soak "
        "under chaos injection at --fault-rate",
    )
    soak.add_argument(
        "--soak", action="store_true",
        help="soak mode: open-loop multi-tenant front-door storm",
    )
    soak.add_argument(
        "--duration", type=float, default=5.0,
        help="seconds per load point (default: 5.0)",
    )
    soak.add_argument(
        "--tenants", type=int, default=3,
        help="tenant count; profiles cycle through the interactive/"
        "analytics/reporting personas (default: 3)",
    )
    soak.add_argument(
        "--load-points", default="0.5,1.0,2.0",
        help="comma-separated offered-load multipliers over each "
        "tenant's contracted rate (default: 0.5,1.0,2.0)",
    )
    soak.add_argument(
        "--working-set-mb", type=float, default=None,
        help="front-door working-set budget in MiB (process executor "
        "only): evict cold shard payloads beyond this",
    )
    return parser


def serve_bench_main(argv: list[str]) -> int:
    parser = build_serve_bench_parser()
    args = parser.parse_args(argv)
    sys.setrecursionlimit(100_000)

    if args.faults and args.collection:
        parser.error("--faults and --collection are mutually exclusive")
    if args.soak and args.collection:
        parser.error("--soak and --collection are mutually exclusive")

    if args.soak:
        from repro.workloads.soak import (
            DEFAULT_TENANTS,
            SoakConfig,
            format_soak_report,
            run_soak,
        )

        if args.tenants < 2:
            parser.error("--tenants must be at least 2")
        personas = len(DEFAULT_TENANTS)
        profiles = []
        for i in range(args.tenants):
            base = DEFAULT_TENANTS[i % personas]
            if i >= personas:
                base = replace(base, name=f"{base.name}{i // personas + 1}")
            profiles.append(base)
        config = SoakConfig(
            seed=args.fault_seed if args.fault_seed else 42,
            duration_s=args.duration,
            load_points=tuple(
                float(m) for m in args.load_points.split(",")
            ),
            shards=args.shards,
            documents=args.documents,
            factor=args.factor,
            executor=args.executor,
            fault_rate=args.fault_rate if args.faults else 0.0,
            fault_seed=args.fault_seed,
            deadline_s=args.deadline,
            working_set_bytes=(
                int(args.working_set_mb * 1024 * 1024)
                if args.working_set_mb is not None
                else None
            ),
            tenants=tuple(profiles),
        )
        if args.quick:
            config = config.quick()
        report = run_soak(config)
        print(format_soak_report(report))
        if args.out:
            Path(args.out).write_text(json.dumps(report, indent=1) + "\n")
            print(f"-- wrote {args.out}")
        return 0 if report["gates"]["passed"] else 1

    if args.faults:
        from repro.faults.campaign import (
            ChaosConfig,
            format_chaos_report,
            run_chaos_campaign,
        )

        config = ChaosConfig(
            seed=args.fault_seed,
            threads=args.threads,
            queries_per_thread=args.queries_per_thread,
            rate=args.fault_rate,
            factor=args.factor,
            deadline_s=args.deadline,
            shards=args.shards,
            documents=args.documents,
            executor=args.executor,
        )
        report = run_chaos_campaign(config)
        print(format_chaos_report(report))
        if args.out:
            Path(args.out).write_text(json.dumps(report, indent=1) + "\n")
            print(f"-- wrote {args.out}")
        return 0 if report["contract"]["holds"] else 1

    if args.collection:
        from repro.bench.collection import (
            format_collection_bench,
            run_collection_bench,
        )

        report = run_collection_bench(
            # the service-bench repeat/documents defaults are sized for
            # the cheaper single-backend loop; substitute collection-
            # mode defaults unless the user overrode them
            documents=args.documents if args.documents != 4 else 8,
            factor=args.factor,
            repeat=args.repeat if args.repeat != 40 else 5,
            shards=tuple(int(n) for n in args.shard_curve.split(",")),
            quick=args.quick,
            executor=args.executor,
        )
        print(format_collection_bench(report))
        if args.out:
            Path(args.out).write_text(json.dumps(report, indent=1) + "\n")
            print(f"-- wrote {args.out}")
        return 0

    from repro.service.bench import format_service_bench, run_service_bench

    report = run_service_bench(
        factor=args.factor,
        repeat=args.repeat,
        workers=tuple(int(w) for w in args.workers.split(",")),
        queries=tuple(args.queries.split(",")),
        quick=args.quick,
        executor=args.executor,
    )
    print(format_service_bench(report))
    if args.out:
        Path(args.out).write_text(json.dumps(report, indent=1) + "\n")
        print(f"-- wrote {args.out}")
    return 0


def _generate(kind: str, factor: float, seed: int) -> str:
    from repro.workloads import (
        DBLPConfig,
        XMarkConfig,
        generate_dblp,
        generate_xmark,
    )
    from repro.xmltree import serialize

    if kind == "xmark":
        return serialize(generate_xmark(XMarkConfig(factor=factor, seed=seed)))
    return serialize(generate_dblp(DBLPConfig(factor=factor, seed=seed)))


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        return lint_main(argv[1:])
    if argv and argv[0] == "analyze":
        return analyze_main(argv[1:])
    if argv and argv[0] == "obs":
        return obs_main(argv[1:])
    if argv and argv[0] == "serve-bench":
        return serve_bench_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    sys.setrecursionlimit(100_000)

    if args.generate:
        sys.stdout.write(_generate(args.generate, args.factor, args.seed))
        return 0

    if not args.query:
        parser.error("a query is required (or use --generate)")
    if not args.doc:
        parser.error("at least one --doc FILE is required")
    if args.shards < 1:
        parser.error("--shards must be at least 1")
    if args.shards > 1 and args.engine == "planner":
        parser.error("--shards does not apply to the planner engine")
    if args.shards > 1 and args.explain:
        parser.error("--explain needs a single backend (drop --shards)")

    if args.shards > 1:
        return _sharded_main(args)

    processor = XQueryProcessor(serialize_step=args.serialize_step)
    observing = bool(args.trace or args.metrics is not None)
    previous_tracer, previous_metrics = get_tracer(), get_metrics()
    if observing:
        tracer = set_tracer(Tracer())
        metrics = set_metrics(MetricsRegistry())
    try:
        for spec in args.doc:
            path, _, uri = spec.partition("=")
            text = Path(path).read_text()
            processor.load(text, uri or Path(path).name)

        compiled = processor.compile(args.query)

        if args.plan:
            from repro.algebra.dagutils import plan_to_text

            print(plan_to_text(compiled.isolated_plan))
            return 0
        if args.sql:
            print(compiled.joingraph_sql.text)
            return 0
        if args.stacked_sql:
            print(compiled.stacked_sql.text)
            return 0
        if args.explain:
            from repro.planner import JoinGraphPlanner, explain_plan
            from repro.sql import flatten_query

            planner = JoinGraphPlanner(processor.store.table)
            plan = planner.plan(flatten_query(compiled.isolated_plan))
            print(explain_plan(plan))
            return 0

        start = time.perf_counter()
        if args.engine == "planner":
            from repro.planner import JoinGraphPlanner
            from repro.sql import flatten_query

            planner = JoinGraphPlanner(processor.store.table)
            items = planner.plan(flatten_query(compiled.isolated_plan)).execute()
        else:
            items = processor.execute(compiled, engine=args.engine)
        elapsed = time.perf_counter() - start

        if args.items:
            print(" ".join(str(i) for i in items))
        else:
            print(processor.serialize(items))
        if args.time:
            print(
                f"-- {len(items)} item(s) in {elapsed * 1000:.2f} ms "
                f"[{args.engine}]",
                file=sys.stderr,
            )
        if observing:
            if args.metrics is not None:
                _audit_planner(processor, compiled)
            if args.trace:
                write_chrome_trace(tracer, args.trace)
            if args.metrics is not None:
                dump = json.dumps(metrics_json(metrics), indent=1)
                if args.metrics == "-":
                    print(dump)
                else:
                    Path(args.metrics).write_text(dump + "\n")
        return 0
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        if observing:
            set_tracer(previous_tracer)
            set_metrics(previous_metrics)


def _sharded_main(args: argparse.Namespace) -> int:
    """The ``--shards N`` execution path: serve the documents from a
    sharded collection through the :func:`repro.connect` facade."""
    import repro

    observing = bool(args.trace or args.metrics is not None)
    previous_tracer, previous_metrics = get_tracer(), get_metrics()
    if observing:
        tracer = set_tracer(Tracer())
        metrics = set_metrics(MetricsRegistry())
    try:
        with repro.connect(
            shards=args.shards, serialize_step=args.serialize_step
        ) as session:
            for spec in args.doc:
                path, _, uri = spec.partition("=")
                session.load(Path(path).read_text(), uri or Path(path).name)

            if args.plan or args.sql or args.stacked_sql:
                compiled = session.service.compile(args.query)
                if args.plan:
                    from repro.algebra.dagutils import plan_to_text

                    print(plan_to_text(compiled.isolated_plan))
                elif args.sql:
                    print(compiled.joingraph_sql.text)
                else:
                    print(compiled.stacked_sql.text)
                return 0

            start = time.perf_counter()
            result = session.execute(args.query, engine=args.engine)
            elapsed = time.perf_counter() - start
            if args.items:
                print(" ".join(str(i) for i in result))
            else:
                print(session.serialize(result))
            if args.time:
                print(
                    f"-- {len(result)} item(s) in {elapsed * 1000:.2f} ms "
                    f"[{args.engine}, fan-out {result.shards} of "
                    f"{args.shards} shard(s)]",
                    file=sys.stderr,
                )
            if observing:
                if args.trace:
                    write_chrome_trace(tracer, args.trace)
                if args.metrics is not None:
                    dump = json.dumps(metrics_json(metrics), indent=1)
                    if args.metrics == "-":
                        print(dump)
                    else:
                        Path(args.metrics).write_text(dump + "\n")
            return 0
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        if observing:
            set_tracer(previous_tracer)
            set_metrics(previous_metrics)


def _audit_planner(processor: XQueryProcessor, compiled) -> None:
    """Run the estimate-vs-actual cardinality audit on our own
    cost-based planner (the estimate-quality half of the metrics dump:
    ``planner.qerror.*``)."""
    from repro.obs import audit_plan
    from repro.planner import JoinGraphPlanner
    from repro.sql import flatten_query

    planner = JoinGraphPlanner(processor.store.table)
    plan = planner.plan(flatten_query(compiled.isolated_plan))
    audit_plan(plan)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
