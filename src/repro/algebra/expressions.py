"""Predicate and scalar expression trees used by σ and ⋈ operators.

The expression language is deliberately small — exactly what the axis
and node-test predicates of paper Fig. 3 and the comparison rules need:
column references, constants, ``+`` (for ``pre + size`` range bounds),
the six general comparison operators, and conjunction/disjunction.

``None`` follows SQL NULL semantics: any comparison involving ``None``
is false.  This matches the behaviour of the generated SQL on the
back-end, keeping all engines differentially consistent.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

Value = int | float | str | None

#: comparison operator name -> (python test, SQL token)
COMPARISONS = {
    "=": (lambda a, b: a == b, "="),
    "!=": (lambda a, b: a != b, "<>"),
    "<": (lambda a, b: a < b, "<"),
    "<=": (lambda a, b: a <= b, "<="),
    ">": (lambda a, b: a > b, ">"),
    ">=": (lambda a, b: a >= b, ">="),
}

#: mirror image of each comparison (for axis reversal: a < b  <=>  b > a)
MIRRORED = {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


class Expr:
    """Base class for expressions.  Instances are immutable."""

    def cols(self) -> frozenset[str]:
        """Column names referenced by this expression (the paper's
        auxiliary ``cols(.)`` on predicates)."""
        raise NotImplementedError

    def evaluate(self, row: Mapping[str, Value]) -> Value:
        """Evaluate against a row given as a column -> value mapping."""
        raise NotImplementedError

    def rename(self, mapping: Mapping[str, str]) -> "Expr":
        """A copy with column names substituted per ``mapping``
        (names absent from the mapping are kept)."""
        raise NotImplementedError

    def substitute(self, mapping: Mapping[str, "Expr"]) -> "Expr":
        """A copy with column references replaced by whole expressions
        (names absent from the mapping are kept as references)."""
        if isinstance(self, ColRef):
            return mapping.get(self.name, self)
        if isinstance(self, Const):
            return self
        if isinstance(self, Plus):
            return Plus(self.left.substitute(mapping), self.right.substitute(mapping))
        if isinstance(self, Comparison):
            return Comparison(
                self.op,
                self.left.substitute(mapping),
                self.right.substitute(mapping),
            )
        if isinstance(self, And):
            return And(p.substitute(mapping) for p in self.parts)
        if isinstance(self, Or):
            return Or(p.substitute(mapping) for p in self.parts)
        if isinstance(self, In):
            return In(self.expr.substitute(mapping), self.values)
        raise NotImplementedError(type(self).__name__)

    def to_sql(self, render_col: Callable[[str], str]) -> str:
        """Render as an SQL expression; ``render_col`` maps a column
        name to its SQL spelling (e.g. ``d2.pre``)."""
        raise NotImplementedError

    # Structural equality / hashing so that rewrite rules can compare
    # predicates (e.g. when detecting duplicate conjuncts).
    def _key(self) -> tuple:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def __repr__(self) -> str:
        return self.to_sql(lambda c: c)


class ColRef(Expr):
    """Reference to a column of the input table."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def cols(self) -> frozenset[str]:
        return frozenset((self.name,))

    def evaluate(self, row: Mapping[str, Value]) -> Value:
        return row[self.name]

    def rename(self, mapping: Mapping[str, str]) -> "ColRef":
        return ColRef(mapping.get(self.name, self.name))

    def to_sql(self, render_col: Callable[[str], str]) -> str:
        return render_col(self.name)

    def _key(self) -> tuple:
        return (self.name,)


class Const(Expr):
    """Literal constant."""

    __slots__ = ("value",)

    def __init__(self, value: Value):
        self.value = value

    def cols(self) -> frozenset[str]:
        return frozenset()

    def evaluate(self, row: Mapping[str, Value]) -> Value:
        return self.value

    def rename(self, mapping: Mapping[str, str]) -> "Const":
        return self

    def to_sql(self, render_col: Callable[[str], str]) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return repr(self.value)

    def _key(self) -> tuple:
        return (self.value,)


class Plus(Expr):
    """Arithmetic sum, e.g. ``pre + size`` in axis range bounds."""

    __slots__ = ("left", "right")

    def __init__(self, left: Expr, right: Expr):
        self.left = left
        self.right = right

    def cols(self) -> frozenset[str]:
        return self.left.cols() | self.right.cols()

    def evaluate(self, row: Mapping[str, Value]) -> Value:
        a = self.left.evaluate(row)
        b = self.right.evaluate(row)
        if a is None or b is None:
            return None
        return a + b  # type: ignore[operator]

    def rename(self, mapping: Mapping[str, str]) -> "Plus":
        return Plus(self.left.rename(mapping), self.right.rename(mapping))

    def to_sql(self, render_col: Callable[[str], str]) -> str:
        return f"{self.left.to_sql(render_col)} + {self.right.to_sql(render_col)}"

    def _key(self) -> tuple:
        return (self.left, self.right)


class Comparison(Expr):
    """One of the six general comparisons ``= != < <= > >=``."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in COMPARISONS:
            raise ValueError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def cols(self) -> frozenset[str]:
        return self.left.cols() | self.right.cols()

    def evaluate(self, row: Mapping[str, Value]) -> bool:
        a = self.left.evaluate(row)
        b = self.right.evaluate(row)
        if a is None or b is None:
            return False  # SQL NULL semantics
        return COMPARISONS[self.op][0](a, b)

    def rename(self, mapping: Mapping[str, str]) -> "Comparison":
        return Comparison(self.op, self.left.rename(mapping), self.right.rename(mapping))

    def mirrored(self) -> "Comparison":
        """Swap the sides (``a < b`` becomes ``b > a``)."""
        return Comparison(MIRRORED[self.op], self.right, self.left)

    def to_sql(self, render_col: Callable[[str], str]) -> str:
        sql_op = COMPARISONS[self.op][1]
        return f"{self.left.to_sql(render_col)} {sql_op} {self.right.to_sql(render_col)}"

    def is_col_eq_col(self) -> tuple[str, str] | None:
        """``(a, b)`` when this is a plain column equality ``a = b``."""
        if (
            self.op == "="
            and isinstance(self.left, ColRef)
            and isinstance(self.right, ColRef)
        ):
            return self.left.name, self.right.name
        return None

    def _key(self) -> tuple:
        return (self.op, self.left, self.right)


class And(Expr):
    """Conjunction of one or more predicates; flattens nested Ands."""

    __slots__ = ("parts",)

    def __init__(self, parts: Iterable[Expr]):
        flat: list[Expr] = []
        for part in parts:
            if isinstance(part, And):
                flat.extend(part.parts)
            else:
                flat.append(part)
        if not flat:
            raise ValueError("And() needs at least one conjunct")
        self.parts = tuple(flat)

    def cols(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for part in self.parts:
            out |= part.cols()
        return out

    def evaluate(self, row: Mapping[str, Value]) -> bool:
        return all(part.evaluate(row) for part in self.parts)

    def rename(self, mapping: Mapping[str, str]) -> "And":
        return And(part.rename(mapping) for part in self.parts)

    def to_sql(self, render_col: Callable[[str], str]) -> str:
        rendered = []
        for part in self.parts:
            text = part.to_sql(render_col)
            if isinstance(part, Or):
                text = f"({text})"
            rendered.append(text)
        return " AND ".join(rendered)

    def _key(self) -> tuple:
        return (self.parts,)


class Or(Expr):
    """Disjunction (needed only for descendant-or-self on attribute
    context nodes, see :mod:`repro.compiler.axes`)."""

    __slots__ = ("parts",)

    def __init__(self, parts: Iterable[Expr]):
        flat: list[Expr] = []
        for part in parts:
            if isinstance(part, Or):
                flat.extend(part.parts)
            else:
                flat.append(part)
        if not flat:
            raise ValueError("Or() needs at least one disjunct")
        self.parts = tuple(flat)

    def cols(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for part in self.parts:
            out |= part.cols()
        return out

    def evaluate(self, row: Mapping[str, Value]) -> bool:
        return any(part.evaluate(row) for part in self.parts)

    def rename(self, mapping: Mapping[str, str]) -> "Or":
        return Or(part.rename(mapping) for part in self.parts)

    def to_sql(self, render_col: Callable[[str], str]) -> str:
        rendered = []
        for part in self.parts:
            text = part.to_sql(render_col)
            if isinstance(part, And):
                text = f"({text})"
            rendered.append(text)
        return " OR ".join(rendered)

    def _key(self) -> tuple:
        return (self.parts,)


class In(Expr):
    """Membership of a scalar in a *literal* value set, rendered as SQL
    ``IN (...)``.

    Semantically equal to an :class:`Or` of ``=`` comparisons, but kept
    as one node so the back-end sees ``col IN (v1, …, vn)`` — which
    SQLite answers with n index point-lookups, where the equivalent
    n-way ``OR`` disjunction makes it abandon the index and fall back
    to scanning (measured ~6x slower on the scatter-gather plans whose
    ``collection()`` membership predicate names every member URI).
    ``None`` in ``values`` follows SQL NULL semantics and never
    matches.
    """

    __slots__ = ("expr", "values")

    def __init__(self, expr: Expr, values: Iterable[Value]):
        self.expr = expr
        self.values = tuple(values)
        if not self.values:
            raise ValueError("In() needs at least one value")

    def cols(self) -> frozenset[str]:
        return self.expr.cols()

    def evaluate(self, row: Mapping[str, Value]) -> bool:
        value = self.expr.evaluate(row)
        if value is None:
            return False
        return any(v is not None and value == v for v in self.values)

    def rename(self, mapping: Mapping[str, str]) -> "In":
        return In(self.expr.rename(mapping), self.values)

    def to_sql(self, render_col: Callable[[str], str]) -> str:
        rendered = ", ".join(Const(v).to_sql(render_col) for v in self.values)
        return f"{self.expr.to_sql(render_col)} IN ({rendered})"

    def _key(self) -> tuple:
        return (self.expr, self.values)


# -- convenience constructors -----------------------------------------------


def col(name: str) -> ColRef:
    """Shorthand for :class:`ColRef`."""
    return ColRef(name)


def lit(value: Value) -> Const:
    """Shorthand for :class:`Const`."""
    return Const(value)


def conjuncts(pred: Expr) -> tuple[Expr, ...]:
    """The top-level conjuncts of a predicate (itself, if not an And)."""
    if isinstance(pred, And):
        return pred.parts
    return (pred,)


def conjoin(parts: Iterable[Expr]) -> Expr:
    """Build a conjunction, collapsing the single-conjunct case."""
    items = list(parts)
    if len(items) == 1:
        return items[0]
    return And(items)
