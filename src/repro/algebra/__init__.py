"""The table algebra of paper Table 1 — the compilation target language.

Operators consume and produce *tables* (ordered schemas, duplicate rows
allowed); duplicate elimination is explicit (``Distinct``) and sequence
order is encoded as data via the row-rank operator (``RowRank``, the
paper's ``%`` / SQL:1999 ``RANK() OVER``).  Plans are DAGs: subplans (in
particular the single ``doc`` leaf) are shared by node identity.
"""

from repro.algebra.expressions import (
    And,
    ColRef,
    Comparison,
    Const,
    Expr,
    In,
    Or,
    Plus,
    col,
    conjuncts,
    lit,
)
from repro.algebra.ops import (
    Attach,
    Cross,
    Distinct,
    DocScan,
    Join,
    LitTable,
    Operator,
    Project,
    RowId,
    RowRank,
    Select,
    Serialize,
)
from repro.algebra.interpreter import Table, evaluate, run_plan
from repro.algebra.dagutils import (
    all_nodes,
    count_ops,
    parents_map,
    plan_to_text,
    replace_node,
    topological_order,
)
from repro.algebra.properties import PlanProperties, infer_properties

__all__ = [
    "And",
    "Attach",
    "ColRef",
    "Comparison",
    "Const",
    "Cross",
    "Distinct",
    "DocScan",
    "Expr",
    "In",
    "Join",
    "LitTable",
    "Operator",
    "Or",
    "PlanProperties",
    "Plus",
    "Project",
    "RowId",
    "RowRank",
    "Select",
    "Serialize",
    "Table",
    "all_nodes",
    "col",
    "conjuncts",
    "count_ops",
    "evaluate",
    "infer_properties",
    "lit",
    "parents_map",
    "plan_to_text",
    "replace_node",
    "run_plan",
    "topological_order",
]
