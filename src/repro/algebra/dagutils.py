"""DAG utilities: traversal, parent maps, node replacement, printing."""

from __future__ import annotations

from collections import Counter
from typing import Iterator

from repro.algebra.ops import Operator


def all_nodes(root: Operator) -> list[Operator]:
    """Every node reachable from ``root``, each exactly once,
    in a post-order (children before parents)."""
    seen: set[int] = set()
    out: list[Operator] = []

    def visit(node: Operator) -> None:
        if id(node) in seen:
            return
        seen.add(id(node))
        for child in node.children:
            visit(child)
        out.append(node)

    visit(root)
    return out


def topological_order(root: Operator) -> list[Operator]:
    """Nodes in bottom-up topological order (alias of :func:`all_nodes`)."""
    return all_nodes(root)


def parents_map(root: Operator) -> dict[int, list[Operator]]:
    """Map from ``id(node)`` to the list of its parents in the DAG.

    A parent appears once per child slot (a self-join over a shared
    subplan contributes the parent twice).
    """
    parents: dict[int, list[Operator]] = {id(root): []}
    for node in all_nodes(root):
        parents.setdefault(id(node), [])
        for child in node.children:
            parents.setdefault(id(child), []).append(node)
    return parents


def replace_node(root: Operator, old: Operator, new: Operator) -> Operator:
    """Replace every edge into ``old`` by an edge into ``new``.

    Returns the (possibly new) root.  Mutates parent nodes in place —
    shared subplans keep being shared.
    """
    if old is new:
        return root
    if root is old:
        return new
    for node in all_nodes(root):
        for i, child in enumerate(node.children):
            if child is old:
                node.children[i] = new
    return root


def reachable(source: Operator, target: Operator) -> bool:
    """The paper's reachability relation  — True if ``target`` occurs
    in the subplan rooted at ``source`` (reflexive)."""
    return any(node is target for node in all_nodes(source))


def count_ops(root: Operator) -> Counter:
    """Histogram of operator class names in the plan (DAG nodes counted
    once, regardless of sharing)."""
    return Counter(type(node).__name__ for node in all_nodes(root))


def iter_edges(root: Operator) -> Iterator[tuple[Operator, int, Operator]]:
    """All (parent, child_slot, child) edges of the DAG."""
    for node in all_nodes(root):
        for slot, child in enumerate(node.children):
            yield node, slot, child


def plan_fingerprint(root: Operator) -> int:
    """Structural hash of the plan DAG (sharing-sensitive): two plans
    get equal fingerprints iff they have the same shape, labels and
    sharing pattern.  Used by the rewrite engine for cycle detection."""
    numbering: dict[int, int] = {}
    parts: list[tuple] = []
    for node in all_nodes(root):  # post-order: children numbered first
        numbering[id(node)] = len(numbering)
        parts.append(
            (node.label(), tuple(numbering[id(c)] for c in node.children))
        )
    return hash(tuple(parts))


def validate_plan(root: Operator) -> None:
    """Check structural invariants: join/cross schemas disjoint, all
    referenced columns present.  Raises RewriteError on violation."""
    from repro.algebra.ops import Cross, Join, Project, RowRank, Select, Serialize
    from repro.errors import RewriteError

    for node in all_nodes(root):
        if isinstance(node, (Join, Cross)):
            overlap = set(node.children[0].columns) & set(node.children[1].columns)
            if overlap:
                raise RewriteError(
                    f"{node.label()}: overlapping columns {sorted(overlap)}"
                )
        have = set()
        for child in node.children:
            have.update(child.columns)
        needed: set[str] = set()
        if isinstance(node, (Select, Join)):
            needed = set(node.pred.cols())
        elif isinstance(node, Project):
            needed = {old for _, old in node.cols}
        elif isinstance(node, RowRank):
            needed = set(node.order)
        elif isinstance(node, Serialize):
            needed = {node.item, node.pos}
        missing = needed - have
        if missing:
            raise RewriteError(
                f"{node.label()}: references missing columns {sorted(missing)}"
            )


def plan_to_text(root: Operator) -> str:
    """Render the plan DAG as indented text; shared nodes are expanded
    once and referenced as ``*<n>`` afterwards."""
    ids: dict[int, int] = {}
    shared = {
        id(node)
        for node, count in _reference_counts(root).items()
        if count > 1
    }
    lines: list[str] = []

    def visit(node: Operator, depth: int) -> None:
        pad = "  " * depth
        if id(node) in ids:
            lines.append(f"{pad}*{ids[id(node)]}")
            return
        marker = ""
        if id(node) in shared:
            ids[id(node)] = len(ids) + 1
            marker = f"  (={ids[id(node)]})"
        lines.append(f"{pad}{node.label()}{marker}")
        for child in node.children:
            visit(child, depth + 1)

    visit(root, 0)
    return "\n".join(lines)


def _reference_counts(root: Operator) -> dict[Operator, int]:
    counts: dict[Operator, int] = {}
    seen: set[int] = set()

    def visit(node: Operator) -> None:
        counts[node] = counts.get(node, 0) + 1
        if id(node) in seen:
            return
        seen.add(id(node))
        for child in node.children:
            visit(child)

    visit(root)
    return counts
