"""DAG utilities: traversal, parent maps, node replacement, printing,
and the structural plan validator shared with :mod:`repro.analysis`."""

from __future__ import annotations

from collections import Counter
from typing import Iterator, NamedTuple

from repro.algebra.ops import Operator


def all_nodes(root: Operator) -> list[Operator]:
    """Every node reachable from ``root``, each exactly once,
    in a post-order (children before parents)."""
    seen: set[int] = set()
    out: list[Operator] = []

    def visit(node: Operator) -> None:
        if id(node) in seen:
            return
        seen.add(id(node))
        for child in node.children:
            visit(child)
        out.append(node)

    visit(root)
    return out


def topological_order(root: Operator) -> list[Operator]:
    """Nodes in bottom-up topological order (alias of :func:`all_nodes`)."""
    return all_nodes(root)


def parents_map(root: Operator) -> dict[int, list[Operator]]:
    """Map from ``id(node)`` to the list of its parents in the DAG.

    A parent appears once per child slot (a self-join over a shared
    subplan contributes the parent twice).
    """
    parents: dict[int, list[Operator]] = {id(root): []}
    for node in all_nodes(root):
        parents.setdefault(id(node), [])
        for child in node.children:
            parents.setdefault(id(child), []).append(node)
    return parents


def replace_node(root: Operator, old: Operator, new: Operator) -> Operator:
    """Replace every edge into ``old`` by an edge into ``new``.

    Returns the (possibly new) root.  Mutates parent nodes in place —
    shared subplans keep being shared.
    """
    if old is new:
        return root
    if root is old:
        return new
    for node in all_nodes(root):
        for i, child in enumerate(node.children):
            if child is old:
                node.children[i] = new
    return root


def clone_plan(root: Operator) -> Operator:
    """Deep-copy a plan DAG, preserving the sharing structure.

    Node payload slots (predicates, column tuples, the document store
    reference) are shared — they are immutable or intentionally common —
    while every :class:`Operator` node is duplicated, so later in-place
    mutation of the original plan cannot affect the clone.
    """
    memo: dict[int, Operator] = {}
    for node in all_nodes(root):
        dup = object.__new__(type(node))
        dup.children = [memo[id(c)] for c in node.children]
        for klass in type(node).__mro__:
            for slot in getattr(klass, "__slots__", ()):
                if slot != "children":
                    setattr(dup, slot, getattr(node, slot))
        memo[id(node)] = dup
    return memo[id(root)]


def reachable(source: Operator, target: Operator) -> bool:
    """The paper's reachability relation  — True if ``target`` occurs
    in the subplan rooted at ``source`` (reflexive)."""
    return any(node is target for node in all_nodes(source))


def count_ops(root: Operator) -> Counter:
    """Histogram of operator class names in the plan (DAG nodes counted
    once, regardless of sharing)."""
    return Counter(type(node).__name__ for node in all_nodes(root))


def iter_edges(root: Operator) -> Iterator[tuple[Operator, int, Operator]]:
    """All (parent, child_slot, child) edges of the DAG."""
    for node in all_nodes(root):
        for slot, child in enumerate(node.children):
            yield node, slot, child


def plan_fingerprint(root: Operator) -> int:
    """Structural hash of the plan DAG (sharing-sensitive): two plans
    get equal fingerprints iff they have the same shape, labels and
    sharing pattern.  Used by the rewrite engine for cycle detection."""
    numbering: dict[int, int] = {}
    parts: list[tuple] = []
    for node in all_nodes(root):  # post-order: children numbered first
        numbering[id(node)] = len(numbering)
        parts.append(
            (node.label(), tuple(numbering[id(c)] for c in node.children))
        )
    return hash(tuple(parts))


class PlanViolation(NamedTuple):
    """One structural defect of a plan DAG.

    ``kind`` is a stable machine-readable slug (mapped to ``JGI``
    diagnostic codes by :mod:`repro.analysis`); ``node`` is the
    offending operator.
    """

    kind: str
    message: str
    node: Operator


#: expected child count per operator class
_ARITY = {
    "Serialize": 1,
    "Project": 1,
    "Select": 1,
    "Distinct": 1,
    "Attach": 1,
    "RowId": 1,
    "RowRank": 1,
    "Join": 2,
    "Cross": 2,
    "DocScan": 0,
    "LitTable": 0,
}


def find_cycle(root: Operator) -> list[Operator] | None:
    """A list of nodes forming a child-edge cycle reachable from
    ``root``, or ``None`` for a well-formed DAG.  Iterative (a cyclic
    "plan" would overflow the stack of the recursive traversals)."""
    GRAY, BLACK = 1, 2
    state: dict[int, int] = {}
    stack: list[tuple[Operator, int]] = [(root, 0)]
    path: list[Operator] = []
    while stack:
        node, child_index = stack.pop()
        if child_index == 0:
            if state.get(id(node)) == BLACK:
                continue
            state[id(node)] = GRAY
            path.append(node)
        if child_index < len(node.children):
            stack.append((node, child_index + 1))
            child = node.children[child_index]
            mark = state.get(id(child))
            if mark == GRAY:
                start = next(
                    i for i, n in enumerate(path) if n is child
                )
                return path[start:]
            if mark != BLACK:
                stack.append((child, 0))
        else:
            state[id(node)] = BLACK
            path.pop()
    return None


def structural_violations(
    root: Operator, *, allow_dead_refs: bool = False
) -> list[PlanViolation]:
    """Every structural defect of the plan DAG rooted at ``root``.

    Checked per node: child arity; join/cross schema disjointness; all
    referenced columns provided by the input; Project output-name
    uniqueness; generated columns (``@``/``#``/``%``) not colliding
    with the input schema; non-empty rank criteria; literal-table row
    arity; Serialize item/pos presence; no inner Serialize.  A node
    whose *construction* invariants fail while it is shared (several
    parents) is flagged as a shared-node mutation hazard: constructors
    enforce those invariants, so only an in-place rewrite of the shared
    node (or of something below it) can have broken them, and each
    parent may now see a conflicting schema.

    ``allow_dead_refs`` relaxes the missing-column check for *dead*
    projection entries — ones whose output no consumer transitively
    needs (``icols``).  One-rule-at-a-time house-cleaning inevitably
    passes through such states: a rule that shrinks a schema (4/5/6/7)
    strands dead syntactic references in parent projections until rule
    (7) restricts them away.  The per-step rewrite sanitizer uses this
    mode; initial and final plans are held to the strict contract.

    Cycles are reported first and alone — the remaining checks do not
    terminate on cyclic "plans".
    """
    from repro.algebra.ops import (
        Attach,
        Cross,
        Join,
        LitTable,
        Project,
        RowId,
        RowRank,
        Select,
        Serialize,
    )

    cycle = find_cycle(root)
    if cycle is not None:
        labels = " -> ".join(n.label() for n in cycle)
        return [
            PlanViolation(
                "cycle", f"plan DAG contains a cycle: {labels}", cycle[0]
            )
        ]

    out: list[PlanViolation] = []
    parent_count: Counter = Counter()
    for node in all_nodes(root):
        for child in node.children:
            parent_count[id(child)] += 1

    def flag(kind: str, node: Operator, message: str, constructed: bool = False) -> None:
        """``constructed``: the defect violates a constructor-enforced
        invariant, so on a shared node it is a mutation hazard."""
        if constructed and parent_count[id(node)] > 1:
            kind = "shared-mutation"
            message = (
                f"shared node (x{parent_count[id(node)]} parents) mutated "
                f"into a conflicting schema: {message}"
            )
        out.append(PlanViolation(kind, f"{node.label()}: {message}", node))

    live_olds: dict[int, set[str]] | None = None

    def live(node: Operator) -> set[str]:
        """The source columns of the projection's *live* entries; every
        source column when icols inference fails (stay strict then)."""
        nonlocal live_olds
        if live_olds is None:
            live_olds = _live_project_olds(root)
        return live_olds.get(id(node), {old for _, old in node.cols})

    for node in all_nodes(root):
        arity = _ARITY.get(type(node).__name__)
        if arity is not None and len(node.children) != arity:
            flag(
                "arity",
                node,
                f"expected {arity} input(s), found {len(node.children)}",
            )
            continue  # the remaining checks assume the right shape

        if isinstance(node, (Join, Cross)):
            overlap = set(node.children[0].columns) & set(node.children[1].columns)
            if overlap:
                flag(
                    "join-overlap",
                    node,
                    f"overlapping columns {sorted(overlap)}",
                    constructed=True,
                )

        have: set[str] = set()
        for child in node.children:
            have.update(child.columns)
        needed: set[str] = set()
        if isinstance(node, (Select, Join)):
            needed = set(node.pred.cols())
        elif isinstance(node, Project):
            needed = {old for _, old in node.cols}
        elif isinstance(node, RowRank):
            needed = set(node.order)
        missing = needed - have
        if missing and allow_dead_refs and isinstance(node, Project):
            missing &= live(node)
        if missing:
            flag(
                "missing-column",
                node,
                f"references missing columns {sorted(missing)}",
                constructed=True,
            )

        if isinstance(node, Serialize):
            absent = {node.item, node.pos} - have
            if absent:
                flag(
                    "serialize-contract",
                    node,
                    f"item/pos columns {sorted(absent)} not provided by input",
                    constructed=True,
                )
            if node is not root:
                flag("inner-serialize", node, "Serialize below the plan root")

        if isinstance(node, Project):
            names = [new for new, _ in node.cols]
            dupes = sorted(n for n, c in Counter(names).items() if c > 1)
            if dupes:
                flag(
                    "project-duplicate",
                    node,
                    f"duplicate output columns {dupes}",
                    constructed=True,
                )
            if not node.cols:
                flag("project-empty", node, "projects onto no columns")

        if isinstance(node, (Attach, RowId, RowRank)):
            if node.col in node.children[0].columns:
                flag(
                    "generated-collision",
                    node,
                    f"generated column {node.col!r} already in the input schema",
                    constructed=True,
                )
            if isinstance(node, RowRank) and not node.order:
                flag("rank-empty", node, "empty order criteria", constructed=True)

        if isinstance(node, LitTable):
            for i, row in enumerate(node.rows):
                if len(row) != len(node.names):
                    flag(
                        "littable-arity",
                        node,
                        f"row {i} has {len(row)} values for "
                        f"{len(node.names)} columns",
                        constructed=True,
                    )
                    break
    return out


def _live_project_olds(root: Operator) -> dict[int, set[str]]:
    """``id(project) -> source columns of its icols-live entries``, for
    every projection in the plan; empty on inference failure (callers
    then fall back to treating every entry as live)."""
    from repro.algebra.ops import Project
    from repro.algebra.properties import infer_properties

    try:
        props = infer_properties(root)
    except Exception:  # noqa: BLE001 - best-effort on broken plans
        return {}
    out: dict[int, set[str]] = {}
    for node in all_nodes(root):
        if isinstance(node, Project):
            icols = props.icols(node)
            out[id(node)] = {old for new, old in node.cols if new in icols}
    return out


def validate_plan(root: Operator) -> None:
    """Check structural invariants (see :func:`structural_violations`):
    join/cross schemas disjoint, all referenced columns present, no
    cycles, no shared-node mutation hazards.  Raises RewriteError on
    the first violation."""
    from repro.errors import RewriteError

    violations = structural_violations(root)
    if violations:
        raise RewriteError(violations[0].message)


def plan_to_text(root: Operator) -> str:
    """Render the plan DAG as indented text; shared nodes are expanded
    once and referenced as ``*<n>`` afterwards."""
    ids: dict[int, int] = {}
    shared = {
        id(node)
        for node, count in _reference_counts(root).items()
        if count > 1
    }
    lines: list[str] = []

    def visit(node: Operator, depth: int) -> None:
        pad = "  " * depth
        if id(node) in ids:
            lines.append(f"{pad}*{ids[id(node)]}")
            return
        marker = ""
        if id(node) in shared:
            ids[id(node)] = len(ids) + 1
            marker = f"  (={ids[id(node)]})"
        lines.append(f"{pad}{node.label()}{marker}")
        for child in node.children:
            visit(child, depth + 1)

    visit(root, 0)
    return "\n".join(lines)


def _reference_counts(root: Operator) -> dict[Operator, int]:
    counts: dict[Operator, int] = {}
    seen: set[int] = set()

    def visit(node: Operator) -> None:
        counts[node] = counts.get(node, 0) + 1
        if id(node) in seen:
            return
        seen.add(id(node))
        for child in node.children:
            visit(child)

    visit(root)
    return counts
