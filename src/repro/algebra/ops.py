"""Operators of the table algebra (paper Table 1).

========================  =============================================
operator                  paper notation
========================  =============================================
:class:`Serialize`        ⌐_{b1,b2} — plan root, serialize b1 in b2 order
:class:`Project`          π_{a1:b1,..,an:bn} — project / rename
:class:`Select`           σ_p — row selection
:class:`Join`             ⋈_p — join with predicate p
:class:`Cross`            × — Cartesian product
:class:`Distinct`         δ — duplicate row elimination
:class:`Attach`           @_{a:c} — attach constant column
:class:`RowId`            #_a — attach arbitrary unique row id
:class:`RowRank`          %_{a:⟨b1,..,bn⟩} — RANK() OVER (ORDER BY b1..bn)
:class:`DocScan`          doc — the XML infoset encoding table
:class:`LitTable`         literal table
========================  =============================================

Plans are DAGs of these nodes; sharing is by node identity (the single
``doc`` leaf in particular is referenced from every XPath step).  Node
schemas (``columns``) are computed on demand so that rewrites that swap
children are immediately reflected.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.algebra.expressions import Expr, Value
from repro.errors import RewriteError

#: Schema of the XML infoset encoding table (Fig. 2).
DOC_COLUMNS = ("pre", "size", "level", "kind", "name", "value", "data")


class Operator:
    """Base class of all plan operators.

    Identity semantics: two nodes are the same plan position iff they
    are the same object (``is``); the DAG shares subplans by reference.
    """

    __slots__ = ("children",)

    def __init__(self, children: Sequence["Operator"]):
        self.children = list(children)

    @property
    def columns(self) -> tuple[str, ...]:
        """Output schema (computed from the current children)."""
        raise NotImplementedError

    def label(self) -> str:
        """Short human-readable operator label for plan printing."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{self.label()} @{id(self):#x}>"

    def _require(self, needed: Iterable[str], where: str) -> None:
        have = set()
        for child in self.children:
            have.update(child.columns)
        missing = [c for c in needed if c not in have]
        if missing:
            raise RewriteError(
                f"{where}: columns {missing} not provided by input "
                f"(have {sorted(have)})"
            )


class Serialize(Operator):
    """Plan root ⌐_{b1,b2}: deliver column ``item`` ordered by ``pos``."""

    __slots__ = ("item", "pos")

    def __init__(self, child: Operator, item: str = "item", pos: str = "pos"):
        super().__init__([child])
        self.item = item
        self.pos = pos
        self._require([item, pos], "Serialize")

    @property
    def child(self) -> Operator:
        return self.children[0]

    @property
    def columns(self) -> tuple[str, ...]:
        return (self.pos, self.item)

    def label(self) -> str:
        return f"SERIALIZE[{self.item} by {self.pos}]"


class Project(Operator):
    """π_{a1:b1,..,an:bn}: project onto columns, optionally renaming.

    ``cols`` is an ordered tuple of ``(new_name, old_name)`` pairs.
    """

    __slots__ = ("cols",)

    def __init__(self, child: Operator, cols: Sequence[tuple[str, str]]):
        super().__init__([child])
        self.cols = tuple((str(n), str(o)) for n, o in cols)
        new_names = [n for n, _ in self.cols]
        if len(set(new_names)) != len(new_names):
            raise RewriteError(f"Project: duplicate output columns {new_names}")
        self._require([o for _, o in self.cols], "Project")

    @staticmethod
    def keep(child: Operator, names: Sequence[str]) -> "Project":
        """Projection without renaming."""
        return Project(child, [(n, n) for n in names])

    @property
    def child(self) -> Operator:
        return self.children[0]

    @property
    def columns(self) -> tuple[str, ...]:
        return tuple(n for n, _ in self.cols)

    @property
    def renaming(self) -> dict[str, str]:
        """new -> old column mapping."""
        return dict(self.cols)

    def is_pure_rename(self) -> bool:
        """True when the projection keeps all input columns (possibly
        renamed), i.e. drops nothing."""
        kept = {o for _, o in self.cols}
        return kept == set(self.child.columns) and len(self.cols) == len(
            self.child.columns
        )

    def label(self) -> str:
        parts = [n if n == o else f"{n}:{o}" for n, o in self.cols]
        return f"PROJECT[{','.join(parts)}]"


class Select(Operator):
    """σ_p: keep rows satisfying predicate ``pred``."""

    __slots__ = ("pred",)

    def __init__(self, child: Operator, pred: Expr):
        super().__init__([child])
        self.pred = pred
        self._require(pred.cols(), "Select")

    @property
    def child(self) -> Operator:
        return self.children[0]

    @property
    def columns(self) -> tuple[str, ...]:
        return self.child.columns

    def label(self) -> str:
        return f"SELECT[{self.pred!r}]"


class Join(Operator):
    """⋈_p: join of two inputs with disjoint schemas."""

    __slots__ = ("pred",)

    def __init__(self, left: Operator, right: Operator, pred: Expr):
        super().__init__([left, right])
        overlap = set(left.columns) & set(right.columns)
        if overlap:
            raise RewriteError(f"Join: overlapping columns {sorted(overlap)}")
        self.pred = pred
        self._require(pred.cols(), "Join")

    @property
    def left(self) -> Operator:
        return self.children[0]

    @property
    def right(self) -> Operator:
        return self.children[1]

    @property
    def columns(self) -> tuple[str, ...]:
        return self.left.columns + self.right.columns

    def equijoin_cols(self) -> tuple[str, str] | None:
        """``(a, b)`` when the predicate is the single equality ``a = b``
        between plain columns — the 1_{a=b} form of the rewrite rules."""
        from repro.algebra.expressions import Comparison

        if isinstance(self.pred, Comparison):
            return self.pred.is_col_eq_col()
        return None

    def label(self) -> str:
        return f"JOIN[{self.pred!r}]"


class Cross(Operator):
    """×: Cartesian product of two inputs with disjoint schemas."""

    __slots__ = ()

    def __init__(self, left: Operator, right: Operator):
        super().__init__([left, right])
        overlap = set(left.columns) & set(right.columns)
        if overlap:
            raise RewriteError(f"Cross: overlapping columns {sorted(overlap)}")

    @property
    def left(self) -> Operator:
        return self.children[0]

    @property
    def right(self) -> Operator:
        return self.children[1]

    @property
    def columns(self) -> tuple[str, ...]:
        return self.left.columns + self.right.columns

    def label(self) -> str:
        return "CROSS"


class Distinct(Operator):
    """δ: eliminate duplicate rows."""

    __slots__ = ()

    def __init__(self, child: Operator):
        super().__init__([child])

    @property
    def child(self) -> Operator:
        return self.children[0]

    @property
    def columns(self) -> tuple[str, ...]:
        return self.child.columns

    def label(self) -> str:
        return "DISTINCT"


class Attach(Operator):
    """@_{a:c}: attach a constant column (abbreviates × with a literal)."""

    __slots__ = ("col", "value")

    def __init__(self, child: Operator, col: str, value: Value):
        super().__init__([child])
        if col in child.columns:
            raise RewriteError(f"Attach: column {col!r} already present")
        self.col = col
        self.value = value

    @property
    def child(self) -> Operator:
        return self.children[0]

    @property
    def columns(self) -> tuple[str, ...]:
        return self.child.columns + (self.col,)

    def label(self) -> str:
        return f"ATTACH[{self.col}:{self.value!r}]"


class RowId(Operator):
    """#_a: attach an arbitrary unique row id in column ``col``."""

    __slots__ = ("col",)

    def __init__(self, child: Operator, col: str):
        super().__init__([child])
        if col in child.columns:
            raise RewriteError(f"RowId: column {col!r} already present")
        self.col = col

    @property
    def child(self) -> Operator:
        return self.children[0]

    @property
    def columns(self) -> tuple[str, ...]:
        return self.child.columns + (self.col,)

    def label(self) -> str:
        return f"ROWID[{self.col}]"


class RowRank(Operator):
    """%_{a:⟨b1,..,bn⟩}: SQL:1999 RANK() OVER (ORDER BY b1,..,bn) AS a.

    Encodes sequence/document order as plain data so that order becomes
    accessible to logical query optimization (paper Section 5).
    """

    __slots__ = ("col", "order")

    def __init__(self, child: Operator, col: str, order: Sequence[str]):
        super().__init__([child])
        if col in child.columns:
            raise RewriteError(f"RowRank: column {col!r} already present")
        if not order:
            raise RewriteError("RowRank: empty order criteria")
        self.col = col
        self.order = tuple(order)
        self._require(self.order, "RowRank")

    @property
    def child(self) -> Operator:
        return self.children[0]

    @property
    def columns(self) -> tuple[str, ...]:
        return self.child.columns + (self.col,)

    def label(self) -> str:
        return f"RANK[{self.col}:<{','.join(self.order)}>]"


class DocScan(Operator):
    """The XML infoset encoding table ``doc`` (shared plan leaf)."""

    __slots__ = ("store",)

    def __init__(self, store):
        super().__init__([])
        self.store = store  # repro.infoset.DocumentStore

    @property
    def columns(self) -> tuple[str, ...]:
        return DOC_COLUMNS

    def label(self) -> str:
        return "DOC"


class LitTable(Operator):
    """Literal table with fixed columns and rows."""

    __slots__ = ("names", "rows")

    def __init__(self, names: Sequence[str], rows: Sequence[Sequence[Value]]):
        super().__init__([])
        self.names = tuple(names)
        self.rows = tuple(tuple(r) for r in rows)
        for row in self.rows:
            if len(row) != len(self.names):
                raise RewriteError("LitTable: row arity mismatch")

    @property
    def columns(self) -> tuple[str, ...]:
        return self.names

    def label(self) -> str:
        return f"TABLE[{','.join(self.names)}; {len(self.rows)} rows]"
