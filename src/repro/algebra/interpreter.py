"""Reference interpreter for the table algebra.

This executor defines the *semantics* of plans: it evaluates a DAG
bottom-up with memoization (shared subplans are computed once) over
plain in-memory tables.  Every other execution engine in the repository
(generated SQL on SQLite, the physical planner, the pureXML baseline)
is differential-tested against it.

Performance is a non-goal here — joins are hash/nested-loop over Python
tuples — but plans over small to medium documents evaluate quickly
enough to serve as the "stacked plan" baseline of the paper's Table 9.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.algebra.expressions import ColRef, Comparison, Value
from repro.algebra.ops import (
    Attach,
    Cross,
    Distinct,
    DocScan,
    Join,
    LitTable,
    Operator,
    Project,
    RowId,
    RowRank,
    Select,
    Serialize,
)


class Table(NamedTuple):
    """An ordered-schema table: column names plus a list of value rows."""

    columns: tuple[str, ...]
    rows: list[tuple[Value, ...]]

    def column_index(self, name: str) -> int:
        return self.columns.index(name)

    def as_dicts(self) -> list[dict[str, Value]]:
        return [dict(zip(self.columns, row)) for row in self.rows]


def _sort_key(value: Value) -> tuple:
    """Total order with None first (SQL NULLS FIRST)."""
    if value is None:
        return (0, 0)
    return (1, value)


def evaluate(node: Operator, cache: dict[int, Table] | None = None) -> Table:
    """Evaluate a plan node to a :class:`Table` (memoized over the DAG)."""
    if cache is None:
        cache = {}
    hit = cache.get(id(node))
    if hit is not None:
        return hit
    result = _evaluate(node, cache)
    cache[id(node)] = result
    return result


def _evaluate(node: Operator, cache: dict[int, Table]) -> Table:
    if isinstance(node, DocScan):
        table = node.store.table
        return Table(
            ("pre", "size", "level", "kind", "name", "value", "data"),
            [tuple(row) for row in table.rows()],
        )

    if isinstance(node, LitTable):
        return Table(node.names, [tuple(r) for r in node.rows])

    if isinstance(node, Project):
        child = evaluate(node.child, cache)
        indices = [child.column_index(old) for _, old in node.cols]
        return Table(
            tuple(new for new, _ in node.cols),
            [tuple(row[i] for i in indices) for row in child.rows],
        )

    if isinstance(node, Select):
        child = evaluate(node.child, cache)
        cols = child.columns
        pred = node.pred
        kept = [row for row in child.rows if pred.evaluate(dict(zip(cols, row)))]
        return Table(cols, kept)

    if isinstance(node, Join):
        return _evaluate_join(node, cache)

    if isinstance(node, Cross):
        left = evaluate(node.left, cache)
        right = evaluate(node.right, cache)
        rows = [lr + rr for lr in left.rows for rr in right.rows]
        return Table(left.columns + right.columns, rows)

    if isinstance(node, Distinct):
        child = evaluate(node.child, cache)
        seen: set[tuple] = set()
        rows: list[tuple] = []
        for row in child.rows:
            if row not in seen:
                seen.add(row)
                rows.append(row)
        return Table(child.columns, rows)

    if isinstance(node, Attach):
        child = evaluate(node.child, cache)
        return Table(
            child.columns + (node.col,),
            [row + (node.value,) for row in child.rows],
        )

    if isinstance(node, RowId):
        child = evaluate(node.child, cache)
        return Table(
            child.columns + (node.col,),
            [row + (i + 1,) for i, row in enumerate(child.rows)],
        )

    if isinstance(node, RowRank):
        return _evaluate_rank(node, cache)

    if isinstance(node, Serialize):
        child = evaluate(node.child, cache)
        pos_i = child.column_index(node.pos)
        item_i = child.column_index(node.item)
        ordered = sorted(
            child.rows,
            key=lambda row: (_sort_key(row[pos_i]), _sort_key(row[item_i])),
        )
        return Table(("pos", "item"), [(r[pos_i], r[item_i]) for r in ordered])

    raise TypeError(f"cannot evaluate {type(node).__name__}")


def _evaluate_join(node: Join, cache: dict[int, Table]) -> Table:
    """Conjunct-aware join: single-column predicates pre-filter their
    side, column equalities drive a hash join, range comparisons over
    one left column drive a band join (sort + bisect) — the rest is
    verified per candidate pair.  This keeps the reference interpreter
    usable on the paper's stacked plans, whose XPath axis joins are
    conjunctive range predicates (Fig. 3)."""
    import bisect

    from repro.algebra.expressions import And

    left = evaluate(node.left, cache)
    right = evaluate(node.right, cache)
    out_cols = left.columns + right.columns
    left_cols, right_cols = set(left.columns), set(right.columns)

    parts = node.pred.parts if isinstance(node.pred, And) else (node.pred,)
    left_only: list = []
    right_only: list = []
    equi: list[tuple[str, str]] = []  # (left col, right col)
    band: list[tuple[str, str]] = []  # (op, left col) with right expr
    band_exprs: list = []
    residual: list = []
    for part in parts:
        cols_used = part.cols()
        if cols_used <= left_cols:
            left_only.append(part)
            continue
        if cols_used <= right_cols:
            right_only.append(part)
            continue
        placed = False
        if isinstance(part, Comparison):
            eq = part.is_col_eq_col()
            if eq is not None:
                a, b = eq
                if a in left_cols and b in right_cols:
                    equi.append((a, b))
                    placed = True
                elif b in left_cols and a in right_cols:
                    equi.append((b, a))
                    placed = True
            if not placed:
                cmp_part = part
                if (
                    isinstance(cmp_part.right, ColRef)
                    and cmp_part.right.name in left_cols
                    and cmp_part.left.cols() <= right_cols
                ):
                    cmp_part = cmp_part.mirrored()
                if (
                    isinstance(cmp_part.left, ColRef)
                    and cmp_part.left.name in left_cols
                    and cmp_part.right.cols() <= right_cols
                    and cmp_part.op in ("<", "<=", ">", ">=", "=")
                ):
                    band.append((cmp_part.op, cmp_part.left.name))
                    band_exprs.append(cmp_part.right)
                    placed = True
        if not placed:
            residual.append(part)

    def filter_side(table: Table, preds: list) -> list[tuple]:
        if not preds:
            return table.rows
        cols = table.columns
        return [
            row
            for row in table.rows
            if all(p.evaluate(dict(zip(cols, row))) for p in preds)
        ]

    left_rows = filter_side(left, left_only)
    right_rows = filter_side(right, right_only)
    rows: list[tuple] = []

    def verify(lr: tuple, rr: tuple) -> bool:
        if not residual:
            return True
        row_map = dict(zip(left.columns, lr))
        row_map.update(zip(right.columns, rr))
        return all(p.evaluate(row_map) for p in residual)

    if equi:
        l_idx = [left.column_index(a) for a, _ in equi]
        r_idx = [right.column_index(b) for _, b in equi]
        residual = residual + [
            Comparison(op, ColRef(c), e)
            for (op, c), e in zip(band, band_exprs)
        ]
        buckets: dict[tuple, list[tuple]] = {}
        for rr in right_rows:
            key = tuple(rr[i] for i in r_idx)
            if None not in key:
                buckets.setdefault(key, []).append(rr)
        for lr in left_rows:
            key = tuple(lr[i] for i in l_idx)
            for rr in buckets.get(key, ()):
                if verify(lr, rr):
                    rows.append(lr + rr)
        return Table(out_cols, rows)

    if band:
        # band join on the left column used most often
        from collections import Counter as _Counter

        target = _Counter(c for _, c in band).most_common(1)[0][0]
        ti = left.column_index(target)
        usable = [
            (op, e)
            for (op, c), e in zip(band, band_exprs)
            if c == target
        ]
        leftover = [
            Comparison(op, ColRef(c), e)
            for (op, c), e in zip(band, band_exprs)
            if c != target
        ]
        residual = residual + leftover
        ordered = sorted(
            (lr for lr in left_rows if lr[ti] is not None),
            key=lambda lr: lr[ti],
        )
        keys = [lr[ti] for lr in ordered]
        for rr in right_rows:
            rmap = dict(zip(right.columns, rr))
            lo, hi = 0, len(ordered)
            exact: Value | object = _UNSET
            ok = True
            for op, expr in usable:
                bound = expr.evaluate(rmap)
                if bound is None:
                    ok = False
                    break
                if op == "=":
                    exact = bound
                elif op == ">":
                    lo = max(lo, bisect.bisect_right(keys, bound))
                elif op == ">=":
                    lo = max(lo, bisect.bisect_left(keys, bound))
                elif op == "<":
                    hi = min(hi, bisect.bisect_left(keys, bound))
                elif op == "<=":
                    hi = min(hi, bisect.bisect_right(keys, bound))
            if not ok:
                continue
            if exact is not _UNSET:
                lo = max(lo, bisect.bisect_left(keys, exact))
                hi = min(hi, bisect.bisect_right(keys, exact))
            for i in range(lo, hi):
                lr = ordered[i]
                if verify(lr, rr):
                    rows.append(lr + rr)
        return Table(out_cols, rows)

    # general theta join: nested loop with predicate evaluation
    for lr in left_rows:
        partial = dict(zip(left.columns, lr))
        for rr in right_rows:
            row_map = dict(partial)
            row_map.update(zip(right.columns, rr))
            if all(p.evaluate(row_map) for p in residual):
                rows.append(lr + rr)
    return Table(out_cols, rows)


class _Unset:
    pass


_UNSET = _Unset()


def _evaluate_rank(node: RowRank, cache: dict[int, Table]) -> Table:
    child = evaluate(node.child, cache)
    order_idx = [child.column_index(c) for c in node.order]
    keyed = [
        (tuple(_sort_key(row[i]) for i in order_idx), n, row)
        for n, row in enumerate(child.rows)
    ]
    keyed.sort(key=lambda knr: (knr[0], knr[1]))
    out_rows: list[tuple | None] = [None] * len(keyed)
    prev_key = None
    rank = 0
    for position, (key, n, row) in enumerate(keyed, start=1):
        if key != prev_key:
            rank = position  # RANK(): ties share a rank, with gaps
            prev_key = key
        out_rows[n] = row + (rank,)
    return Table(child.columns + (node.col,), out_rows)  # type: ignore[arg-type]


def run_plan(root: Operator) -> list[Value]:
    """Evaluate a plan and return the result item sequence in order.

    ``root`` is expected to be (or to contain at its top) a
    :class:`Serialize` operator; for convenience a bare table-producing
    plan may also be passed, in which case the item order is the row
    order of its ``pos``/``item`` columns.
    """
    result = evaluate(root)
    if isinstance(root, Serialize):
        return [item for _, item in result.rows]
    if "item" in result.columns:
        pos_i = result.column_index("pos") if "pos" in result.columns else None
        item_i = result.column_index("item")
        rows = result.rows
        if pos_i is not None:
            rows = sorted(
                rows, key=lambda r: (_sort_key(r[pos_i]), _sort_key(r[item_i]))
            )
        return [r[item_i] for r in rows]
    raise TypeError("plan does not produce an item sequence")
