"""Plan property inference (paper Tables 2–5).

Four properties drive the join graph isolation rewrites:

``icols``
    Columns strictly required by an operator's *upstream* plan
    (top-down; union over all consumers of a shared node).  Seeded at
    the plan root with ``{pos, item}`` — the columns needed to
    serialize the result.  Enables projection push-down.
``const``
    Columns known to carry one constant value in every row
    (bottom-up; seeded at literal tables and ``Attach``).
``key``
    Candidate keys (sets of columns) of each operator's output
    (bottom-up; equi-join and rank inference follow the functional
    dependency arguments of the paper / [23, §5.2.1]).
``set``
    True when the operator's output rows will undergo duplicate
    elimination upstream on *every* consumer path, so that producing
    fewer duplicates early is unobservable (top-down; a simpler,
    modular form of Starburst's "Distinct Pushdown").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.dagutils import all_nodes
from repro.algebra.expressions import Value
from repro.algebra.ops import (
    Attach,
    Cross,
    Distinct,
    DocScan,
    Join,
    LitTable,
    Operator,
    Project,
    RowId,
    RowRank,
    Select,
    Serialize,
)

Keys = frozenset[frozenset[str]]


@dataclass
class PlanProperties:
    """Inferred properties for every node of one plan DAG, keyed by
    node identity."""

    _icols: dict[int, frozenset[str]] = field(default_factory=dict)
    _const: dict[int, dict[str, Value]] = field(default_factory=dict)
    _keys: dict[int, Keys] = field(default_factory=dict)
    _set: dict[int, bool] = field(default_factory=dict)

    def icols(self, node: Operator) -> frozenset[str]:
        return self._icols[id(node)]

    def const(self, node: Operator) -> dict[str, Value]:
        return self._const[id(node)]

    def const_cols(self, node: Operator) -> frozenset[str]:
        return frozenset(self._const[id(node)])

    def keys(self, node: Operator) -> Keys:
        return self._keys[id(node)]

    def set_prop(self, node: Operator) -> bool:
        return self._set[id(node)]

    def has_key_within(self, node: Operator, cols: frozenset[str]) -> bool:
        """True if some candidate key of ``node`` is contained in ``cols``."""
        return any(k <= cols for k in self._keys[id(node)])

    def has_singleton_key(self, node: Operator, column: str) -> bool:
        """True if ``{column}`` (or the empty key: at most one row) is a
        candidate key of ``node``."""
        return any(k <= frozenset((column,)) for k in self._keys[id(node)])


def infer_properties(root: Operator) -> PlanProperties:
    """Run all four inferences over the DAG rooted at ``root``."""
    props = PlanProperties()
    order = all_nodes(root)  # post-order: children before parents

    for node in order:  # bottom-up: const, key
        props._const[id(node)] = _infer_const(node, props)
        keys = _infer_keys(node, props)
        # constant columns add no discrimination: reduce keys by them.
        # (The empty key means the table holds at most one row.)
        const_cols = frozenset(props._const[id(node)])
        if const_cols:
            keys = frozenset(k - const_cols for k in keys)
        props._keys[id(node)] = keys

    # top-down: icols, set — initialise accumulators, then let each
    # parent contribute to its children in reverse topological order.
    for node in order:
        props._icols[id(node)] = frozenset()
        props._set[id(node)] = True
    if isinstance(root, Serialize):
        props._icols[id(root)] = frozenset(("pos", "item"))
    else:
        # analysing a bare subplan: assume everything is needed and
        # nothing is deduplicated upstream.
        props._icols[id(root)] = frozenset(root.columns)
    props._set[id(root)] = False

    for node in reversed(order):  # parents before children
        _contribute_downward(node, props)
    return props


# -- const (Table 3) ---------------------------------------------------------


def _infer_const(node: Operator, props: PlanProperties) -> dict[str, Value]:
    if isinstance(node, LitTable):
        if not node.rows:
            return {}
        out: dict[str, Value] = {}
        for i, name in enumerate(node.names):
            values = {row[i] for row in node.rows}
            if len(values) == 1:
                out[name] = next(iter(values))
        return out
    if isinstance(node, DocScan):
        return {}
    if isinstance(node, Project):
        child_const = props._const[id(node.child)]
        return {new: child_const[old] for new, old in node.cols if old in child_const}
    if isinstance(node, Attach):
        out = dict(props._const[id(node.child)])
        out[node.col] = node.value
        return out
    if isinstance(node, (Join, Cross)):
        out = dict(props._const[id(node.children[0])])
        out.update(props._const[id(node.children[1])])
        return out
    if isinstance(node, Serialize):
        # Serialize narrows the schema to (pos, item): constants on the
        # dropped iter column must not leak past it.
        schema = frozenset(node.columns)
        return {
            name: value
            for name, value in props._const[id(node.child)].items()
            if name in schema
        }
    # Select, Distinct, RowId, RowRank: pass through
    return dict(props._const[id(node.children[0])])


# -- key (Table 4) -----------------------------------------------------------


def _infer_keys(node: Operator, props: PlanProperties) -> Keys:
    if isinstance(node, DocScan):
        return frozenset((frozenset(("pre",)),))
    if isinstance(node, LitTable):
        out: set[frozenset[str]] = set()
        for i, name in enumerate(node.names):
            values = [row[i] for row in node.rows]
            if len(set(values)) == len(values):
                out.add(frozenset((name,)))
        if len(node.rows) <= 1:
            out.update(frozenset((n,)) for n in node.names)
        return frozenset(out)
    if isinstance(node, Project):
        child_keys = props._keys[id(node.child)]
        olds = {old for _, old in node.cols}
        out = set()
        for k in child_keys:
            if not k <= olds:
                continue
            # a source column may be duplicated under several new names;
            # each choice of one new name per source column is a key.
            choices = [
                [new for new, old in node.cols if old == src] for src in k
            ]
            out.update(_products(choices))
        return frozenset(out)
    if isinstance(node, Select):
        return props._keys[id(node.child)]
    if isinstance(node, Serialize):
        # Serialize narrows the schema to (pos, item): only keys fully
        # contained in it survive.
        schema = frozenset(node.columns)
        return frozenset(
            k for k in props._keys[id(node.child)] if k <= schema
        )
    if isinstance(node, Distinct):
        child = node.child
        return props._keys[id(child)] | {frozenset(child.columns)}
    if isinstance(node, Attach):
        return props._keys[id(node.child)]
    if isinstance(node, RowId):
        return props._keys[id(node.child)] | {frozenset((node.col,))}
    if isinstance(node, RowRank):
        child_keys = props._keys[id(node.child)]
        order = frozenset(node.order)
        extra = {
            frozenset((node.col,)) | (k - order)
            for k in child_keys
            if k & order
        }
        return child_keys | extra
    if isinstance(node, Join):
        return _join_keys(node, props)
    if isinstance(node, Cross):
        k1 = props._keys[id(node.left)]
        k2 = props._keys[id(node.right)]
        return frozenset(a | b for a in k1 for b in k2)
    raise TypeError(f"key inference: unknown operator {type(node).__name__}")


def _join_keys(node: Join, props: PlanProperties) -> Keys:
    left, right = node.left, node.right
    k1s = props._keys[id(left)]
    k2s = props._keys[id(right)]
    out: set[frozenset[str]] = set(a | b for a in k1s for b in k2s)

    eq = node.equijoin_cols()
    if eq is not None:
        a, b = eq
        # orient: a on the left input, b on the right input
        if a in right.columns and b in left.columns:
            a, b = b, a
        if a in left.columns and b in right.columns:
            # {b} (or the empty key: at most one row) being a key means
            # each left row finds at most one partner, and vice versa.
            right_b_key = any(k <= frozenset((b,)) for k in k2s)
            left_a_key = any(k <= frozenset((a,)) for k in k1s)
            if right_b_key:
                out.update(k1s)  # each left row matches at most one right row
                out.update((k1 - {a}) | k2 for k1 in k1s for k2 in k2s)
            if left_a_key:
                out.update(k2s)
                out.update(k1 | (k2 - {b}) for k1 in k1s for k2 in k2s)
    return frozenset(out)


def _products(choices: list[list[str]], limit: int = 16) -> set[frozenset[str]]:
    """All ways of picking one element per choice list, as frozensets,
    capped to keep key sets small."""
    out: set[frozenset[str]] = {frozenset()}
    for options in choices:
        out = {k | {o} for k in out for o in options}
        if len(out) > limit:
            return set(list(out)[:limit])
    return out


# -- icols (Table 2) and set (Table 5): downward contributions ---------------


def _contribute_downward(node: Operator, props: PlanProperties) -> None:
    icols = props._icols[id(node)]
    set_here = props._set[id(node)]

    def add_icols(child: Operator, cols: frozenset[str]) -> None:
        props._icols[id(child)] |= cols & frozenset(child.columns)

    def and_set(child: Operator, value: bool) -> None:
        props._set[id(child)] = props._set[id(child)] and value

    if isinstance(node, Serialize):
        add_icols(node.child, frozenset((node.item, node.pos)))
        and_set(node.child, False)
    elif isinstance(node, Project):
        needed = frozenset(old for new, old in node.cols if new in icols)
        add_icols(node.child, needed)
        and_set(node.child, set_here)
    elif isinstance(node, Select):
        add_icols(node.child, icols | node.pred.cols())
        and_set(node.child, set_here)
    elif isinstance(node, Join):
        needed = icols | node.pred.cols()
        for child in node.children:
            add_icols(child, needed)
            and_set(child, set_here)
    elif isinstance(node, Cross):
        for child in node.children:
            add_icols(child, icols)
            and_set(child, set_here)
    elif isinstance(node, Distinct):
        add_icols(node.child, icols)
        and_set(node.child, True)
    elif isinstance(node, Attach):
        add_icols(node.child, icols - {node.col})
        and_set(node.child, set_here)
    elif isinstance(node, RowId):
        add_icols(node.child, icols - {node.col})
        and_set(node.child, False)
    elif isinstance(node, RowRank):
        add_icols(node.child, (icols - {node.col}) | frozenset(node.order))
        and_set(node.child, set_here)
    # DocScan / LitTable: leaves, nothing to contribute
