"""repro — *Let SQL Drive the XQuery Workhorse* (EDBT 2010) in Python.

A purely relational XQuery processor: the workhorse fragment of XQuery
compiles — via loop lifting — into table-algebra DAGs over a
pre/size/level encoding of XML, which **join graph isolation** rewrites
into single SELECT-DISTINCT-FROM-WHERE-ORDER BY blocks executed by an
off-the-shelf SQL back-end.

Quickstart::

    import repro

    with repro.connect() as session:
        session.load(open("auction.xml").read(), "auction.xml")
        result = session.execute('doc("auction.xml")//open_auction[bidder]')
        print(result.serialize())

Scale out across shards (``fn:collection`` fans out one compiled plan
across per-shard tables and merges in document order)::

    with repro.connect(shards=4) as session:
        for text, uri in corpus:
            session.load(text, uri)
        print(session.run('collection()//person[profile/@income > 80000]/name'))

The stable public surface is what this module re-exports (semantic
versioning promise in ``docs/api.md``): :func:`connect` /
:class:`Session`, the :class:`Result` / :class:`Serialized` return
types, the :class:`Engine` enum, the error hierarchy, and the
lower-level building blocks :class:`XQueryProcessor`,
:class:`QueryService`, :class:`ShardedService`, :class:`Collection`
and the infoset encoding.

Sub-packages
------------
``repro.xmltree``   XML parser / tree model / serializer
``repro.infoset``   tabular infoset encoding (Fig. 2) and navigation
``repro.xquery``    parser + XQuery Core normalization (Fig. 1)
``repro.algebra``   table algebra, interpreter, property inference
``repro.compiler``  loop-lifting compilation (Fig. 13, Fig. 3)
``repro.rewrite``   join graph isolation (Fig. 5 rules (1)–(19))
``repro.sql``       SQL generation + SQLite back-end (Figs. 8–9)
``repro.planner``   cost-based optimizer & physical engine (Figs. 10–11,
                    Table 6 index advisor, Table 7 operators)
``repro.purexml``   XSCAN/TurboXPath-style native baseline (Section 4.2)
``repro.workloads`` XMark / DBLP generators and the paper's query set
``repro.bench``     multi-engine benchmark harness (Table 9)
``repro.store``     sharded multi-document collection store
``repro.service``   serving layer: plan cache, pools, scatter-gather
"""

from repro.api import Session, connect
from repro.engines import Engine
from repro.errors import (
    AnalysisError,
    BackendUnavailable,
    CircuitOpenError,
    CodegenError,
    CompileError,
    DeadlineExceeded,
    DocumentError,
    PlanError,
    PoolRetiredError,
    QuotaExceeded,
    ReproError,
    RewriteError,
    SanitizerError,
    ServiceError,
    ServiceOverloaded,
    WorkerCrash,
    XMLParseError,
    XQuerySyntaxError,
    XQueryTypeError,
)
from repro.infoset.encoding import DocTable, DocumentStore, shred
from repro.pipeline import CompiledQuery, XQueryProcessor
from repro.result import Result, Serialized
from repro.service import (
    CacheStats,
    FrontDoor,
    QueryService,
    ShardedService,
    TenantSpec,
    TierStats,
)
from repro.store import Collection

__version__ = "1.2.0"

__all__ = [
    "AnalysisError",
    "BackendUnavailable",
    "CacheStats",
    "CircuitOpenError",
    "CodegenError",
    "Collection",
    "CompileError",
    "CompiledQuery",
    "DeadlineExceeded",
    "DocTable",
    "DocumentError",
    "DocumentStore",
    "Engine",
    "FrontDoor",
    "PlanError",
    "PoolRetiredError",
    "QueryService",
    "QuotaExceeded",
    "ReproError",
    "Result",
    "RewriteError",
    "SanitizerError",
    "Serialized",
    "ServiceError",
    "ServiceOverloaded",
    "Session",
    "ShardedService",
    "TenantSpec",
    "TierStats",
    "WorkerCrash",
    "XMLParseError",
    "XQueryProcessor",
    "XQuerySyntaxError",
    "XQueryTypeError",
    "__version__",
    "connect",
    "shred",
]
