"""repro — *Let SQL Drive the XQuery Workhorse* (EDBT 2010) in Python.

A purely relational XQuery processor: the workhorse fragment of XQuery
compiles — via loop lifting — into table-algebra DAGs over a
pre/size/level encoding of XML, which **join graph isolation** rewrites
into single SELECT-DISTINCT-FROM-WHERE-ORDER BY blocks executed by an
off-the-shelf SQL back-end.

Quickstart::

    from repro import XQueryProcessor

    xp = XQueryProcessor()
    xp.load(open("auction.xml").read(), "auction.xml")
    print(xp.run('doc("auction.xml")//open_auction[bidder]'))

Sub-packages
------------
``repro.xmltree``   XML parser / tree model / serializer
``repro.infoset``   tabular infoset encoding (Fig. 2) and navigation
``repro.xquery``    parser + XQuery Core normalization (Fig. 1)
``repro.algebra``   table algebra, interpreter, property inference
``repro.compiler``  loop-lifting compilation (Fig. 13, Fig. 3)
``repro.rewrite``   join graph isolation (Fig. 5 rules (1)–(19))
``repro.sql``       SQL generation + SQLite back-end (Figs. 8–9)
``repro.planner``   cost-based optimizer & physical engine (Figs. 10–11,
                    Table 6 index advisor, Table 7 operators)
``repro.purexml``   XSCAN/TurboXPath-style native baseline (Section 4.2)
``repro.workloads`` XMark / DBLP generators and the paper's query set
``repro.bench``     multi-engine benchmark harness (Table 9)
"""

from repro.errors import (
    CodegenError,
    CompileError,
    DocumentError,
    PlanError,
    ReproError,
    RewriteError,
    XMLParseError,
    XQuerySyntaxError,
    XQueryTypeError,
)
from repro.infoset.encoding import DocTable, DocumentStore, shred
from repro.pipeline import CompiledQuery, XQueryProcessor

__version__ = "1.0.0"

__all__ = [
    "CodegenError",
    "CompileError",
    "CompiledQuery",
    "DocTable",
    "DocumentError",
    "DocumentStore",
    "PlanError",
    "ReproError",
    "RewriteError",
    "XMLParseError",
    "XQueryProcessor",
    "XQuerySyntaxError",
    "XQueryTypeError",
    "__version__",
    "shred",
]
