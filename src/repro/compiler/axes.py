"""Axis and node-test predicates over the infoset encoding (paper Fig. 3).

The structural relationship of an XPath axis ``α`` maps to a conjunctive
range predicate ``axis(α)`` over the columns ``pre``, ``size`` and
``level`` of the stepped-to ``doc`` row and of the context row (whose
columns carry a suffix, the paper's ``°`` mark).  Kind and name tests
yield equality predicates over ``kind`` and ``name``.

Two details beyond the paper's excerpt:

* Non-attribute axes must not deliver ATTR rows (attributes are stored
  inside their owner's ``pre``/``size`` range, Fig. 2) — a ``kind <>
  ATTR`` conjunct is added whenever the node test does not already pin
  the kind.
* ``descendant-or-self`` keeps an ATTR context node itself visible via
  a disjunct ``(kind <> ATTR OR pre = pre°)``.

The sibling axes are *not* expressible as one conjunctive predicate
over (context, node) in this encoding; the compiler lowers them to a
parent-then-child join pair (see ``looplift.py``).
"""

from __future__ import annotations

from repro.algebra.expressions import (
    And,
    Comparison,
    Expr,
    Or,
    Plus,
    col,
    lit,
)
from repro.errors import CompileError
from repro.xmltree.model import NodeKind

#: axes directly supported by one conjunctive predicate
PAIRWISE_AXES = frozenset(
    (
        "child",
        "descendant",
        "descendant-or-self",
        "self",
        "parent",
        "ancestor",
        "ancestor-or-self",
        "following",
        "preceding",
        "attribute",
    )
)

#: axes lowered to a parent-join + child-join pair
SIBLING_AXES = frozenset(("following-sibling", "preceding-sibling"))

_KIND_OF_TEST = {
    "element": int(NodeKind.ELEM),
    "attribute": int(NodeKind.ATTR),
    "text": int(NodeKind.TEXT),
    "comment": int(NodeKind.COMMENT),
    "processing-instruction": int(NodeKind.PI),
    "document-node": int(NodeKind.DOC),
}

_ATTR = int(NodeKind.ATTR)


def node_test_predicate(kind_test: str | None, name_test: str | None) -> Expr | None:
    """``kindt(n) ∧ namet(n)`` of Fig. 3; ``None`` when the test is
    vacuous (``node()``)."""
    conjuncts: list[Expr] = []
    if kind_test is not None and kind_test != "node":
        if kind_test not in _KIND_OF_TEST:
            raise CompileError(f"unknown kind test {kind_test!r}")
        conjuncts.append(Comparison("=", col("kind"), lit(_KIND_OF_TEST[kind_test])))
    if name_test is not None and name_test != "*":
        conjuncts.append(Comparison("=", col("name"), lit(name_test)))
    if not conjuncts:
        return None
    if len(conjuncts) == 1:
        return conjuncts[0]
    return And(conjuncts)


def axis_predicate(axis: str, suffix: str, kind_pinned: bool) -> Expr:
    """``axis(α)`` of Fig. 3 as a predicate between the raw ``doc``
    columns (the stepped-to node) and the context columns
    ``pre<suffix>``, ``size<suffix>``, ``level<suffix>``.

    ``kind_pinned`` is True when the accompanying node test already
    fixes the node kind, making the ``kind <> ATTR`` guard redundant.
    """
    if axis not in PAIRWISE_AXES:
        raise CompileError(
            f"axis {axis!r} has no pairwise predicate; "
            "sibling axes are lowered by the compiler"
        )
    pre_c = col(f"pre{suffix}")
    size_c = col(f"size{suffix}")
    level_c = col(f"level{suffix}")
    pre, size, level, kind = col("pre"), col("size"), col("level"), col("kind")
    not_attr = Comparison("!=", kind, lit(_ATTR))

    def guard(parts: list[Expr]) -> Expr:
        if not kind_pinned:
            parts = parts + [not_attr]
        return And(parts) if len(parts) > 1 else parts[0]

    if axis == "child":
        return guard(
            [
                Comparison("<", pre_c, pre),
                Comparison("<=", pre, Plus(pre_c, size_c)),
                Comparison("=", Plus(level_c, lit(1)), level),
            ]
        )
    if axis == "descendant":
        return guard(
            [
                Comparison("<", pre_c, pre),
                Comparison("<=", pre, Plus(pre_c, size_c)),
            ]
        )
    if axis == "descendant-or-self":
        parts: list[Expr] = [
            Comparison("<=", pre_c, pre),
            Comparison("<=", pre, Plus(pre_c, size_c)),
        ]
        if not kind_pinned:
            parts.append(Or([not_attr, Comparison("=", pre, pre_c)]))
        return And(parts)
    if axis == "self":
        return Comparison("=", pre, pre_c)
    if axis == "parent":
        return And(
            [
                Comparison("<", pre, pre_c),
                Comparison("<=", pre_c, Plus(pre, size)),
                Comparison("=", Plus(level, lit(1)), level_c),
            ]
        )
    if axis == "ancestor":
        return And(
            [
                Comparison("<", pre, pre_c),
                Comparison("<=", pre_c, Plus(pre, size)),
            ]
        )
    if axis == "ancestor-or-self":
        return And(
            [
                Comparison("<=", pre, pre_c),
                Comparison("<=", pre_c, Plus(pre, size)),
            ]
        )
    if axis == "following":
        return guard([Comparison("<", Plus(pre_c, size_c), pre)])
    if axis == "preceding":
        return guard([Comparison("<", Plus(pre, size), pre_c)])
    if axis == "attribute":
        parts = [
            Comparison("<", pre_c, pre),
            Comparison("<=", pre, Plus(pre_c, size_c)),
            Comparison("=", Plus(level_c, lit(1)), level),
        ]
        if not kind_pinned:  # the node test usually pins kind = ATTR
            parts.append(Comparison("=", kind, lit(_ATTR)))
        return And(parts)
    raise CompileError(f"unhandled axis {axis!r}")  # pragma: no cover
