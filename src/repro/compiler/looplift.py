"""The loop-lifting compilation scheme ``Γ; loop ⊢ e ⇒ q`` (Fig. 13).

Every Core subexpression ``e`` compiles into a plan producing a table
with schema ``iter|pos|item``: row ``[i, p, v]`` states that in
iteration ``i``, ``e`` returned the node with pre rank ``v`` at
sequence position ``p``.

The compiler threads

* ``env`` (the paper's Γ): variable name → plan, and
* ``loop``: a single-column ``iter`` table with one row per iteration
  of the innermost enclosing for loop,

and emits one *shared* :class:`DocScan` leaf serving all node
references — the plans are DAGs, exactly as in Fig. 4.
"""

from __future__ import annotations

from repro.algebra.expressions import And, Comparison, In, col, lit
from repro.algebra.ops import (
    Attach,
    Cross,
    Distinct,
    DocScan,
    Join,
    LitTable,
    Operator,
    Project,
    RowId,
    RowRank,
    Select,
    Serialize,
)
from repro.compiler.axes import (
    PAIRWISE_AXES,
    SIBLING_AXES,
    axis_predicate,
    node_test_predicate,
)
from repro.errors import CompileError
from repro.infoset.encoding import DocumentStore
from repro.xmltree.model import NodeKind
from repro.xquery.core import (
    CoreCollection,
    CoreComp,
    CoreDdo,
    CoreDoc,
    CoreEmpty,
    CoreExpr,
    CoreFor,
    CoreIf,
    CoreLet,
    CoreStep,
    CoreValComp,
    CoreVar,
)

_DOC = int(NodeKind.DOC)

Env = dict[str, Operator]


class LoopLiftingCompiler:
    """Compiles Core expressions to algebra plans over one document store."""

    def __init__(self, store: DocumentStore):
        self.store = store
        #: the single shared ``doc`` leaf of the plan DAG
        self.doc = DocScan(store)
        self._counter = 0

    # -- helpers ---------------------------------------------------------

    def _fresh(self) -> int:
        self._counter += 1
        return self._counter

    def _iter_pos_item(self, plan: Operator) -> Operator:
        """Project a plan onto the canonical iter|pos|item schema."""
        return Project.keep(plan, ("iter", "pos", "item"))

    # -- entry points ----------------------------------------------------

    def compile(self, core: CoreExpr) -> Serialize:
        """Compile a top-level expression: a pseudo loop with a single
        iteration wraps the query; the plan root serializes item by pos."""
        loop = LitTable(("iter",), [(1,)])
        q = self.compile_expr(core, {}, loop)
        return Serialize(q, item="item", pos="pos")

    def compile_expr(self, core: CoreExpr, env: Env, loop: Operator) -> Operator:
        if isinstance(core, CoreDoc):
            return self._rule_doc(core, loop)
        if isinstance(core, CoreCollection):
            return self._rule_collection(core, loop)
        if isinstance(core, CoreDdo):
            return self._rule_ddo(core, env, loop)
        if isinstance(core, CoreStep):
            return self._rule_step(core, env, loop)
        if isinstance(core, CoreIf):
            return self._rule_if(core, env, loop)
        if isinstance(core, CoreValComp):
            return self._rule_valcomp(core, env, loop)
        if isinstance(core, CoreComp):
            return self._rule_comp(core, env, loop)
        if isinstance(core, CoreFor):
            return self._rule_for(core, env, loop)
        if isinstance(core, CoreLet):
            return self._rule_let(core, env, loop)
        if isinstance(core, CoreVar):
            return self._rule_var(core, env)
        if isinstance(core, CoreEmpty):
            return LitTable(("iter", "pos", "item"), [])
        raise CompileError(f"cannot compile {type(core).__name__}")

    # -- rules (Fig. 13) --------------------------------------------------

    def _rule_doc(self, core: CoreDoc, loop: Operator) -> Operator:
        """Doc: the DOC row of the given URI, replicated per iteration."""
        doc_row = Select(
            self.doc,
            And(
                [
                    Comparison("=", col("kind"), lit(_DOC)),
                    Comparison("=", col("name"), lit(core.uri)),
                ]
            ),
        )
        lifted = Cross(doc_row, Attach(loop, "pos", 1))
        return Project(lifted, [("iter", "iter"), ("pos", "pos"), ("item", "pre")])

    def _rule_collection(self, core: CoreCollection, loop: Operator) -> Operator:
        """Collection: the DOC rows of every member URI, replicated per
        iteration and ranked into document order.  The URI set is baked
        into the plan as an ``IN`` membership predicate on the DOC-row
        name (one index point-lookup per member — an ``OR`` disjunction
        of equalities makes SQLite abandon the name index), so the
        generated SQL is portable across any backend hosting a subset
        of the members (missing documents simply match nothing) — the
        property the scatter-gather executor relies on."""
        if not core.uris:
            return LitTable(("iter", "pos", "item"), [])
        if len(core.uris) == 1:
            return self._rule_doc(CoreDoc(core.uris[0]), loop)
        doc_rows = Select(
            self.doc,
            And(
                [
                    Comparison("=", col("kind"), lit(_DOC)),
                    In(col("name"), core.uris),
                ]
            ),
        )
        lifted = Cross(doc_rows, loop)
        members = Project(lifted, [("iter", "iter"), ("item", "pre")])
        return RowRank(members, "pos", ("item",))

    def _rule_ddo(self, core: CoreDdo, env: Env, loop: Operator) -> Operator:
        """Ddo: duplicate node removal + document order per iteration."""
        q = self.compile_expr(core.expr, env, loop)
        dedup = Distinct(Project.keep(q, ("iter", "item")))
        return RowRank(dedup, "pos", ("item",))

    def _rule_step(self, core: CoreStep, env: Env, loop: Operator) -> Operator:
        """Step: join-based XPath location step evaluation."""
        if core.axis in SIBLING_AXES:
            return self._rule_step_sibling(core, env, loop)
        if core.axis not in PAIRWISE_AXES:
            raise CompileError(f"unknown axis {core.axis!r}")

        q = self.compile_expr(core.input, env, loop)
        n = self._fresh()
        suffix = str(n)
        context = Project(
            Join(self.doc, q, Comparison("=", col("pre"), col("item"))),
            [
                ("iter", "iter"),
                (f"pre{suffix}", "pre"),
                (f"size{suffix}", "size"),
                (f"level{suffix}", "level"),
            ],
        )
        tested = self._tested_doc(core.kind_test, core.name_test)
        kind_pinned = _kind_pinned(core.axis, core.kind_test)
        joined = Join(tested, context, axis_predicate(core.axis, suffix, kind_pinned))
        stepped = Project(joined, [("iter", "iter"), ("item", "pre")])
        return RowRank(stepped, "pos", ("item",))

    def _rule_step_sibling(self, core: CoreStep, env: Env, loop: Operator) -> Operator:
        """Sibling axes, lowered to parent-join + child-join:
        ``w ∈ v/following-sibling::n`` iff ``w ∈ parent(v)/child::n``
        and ``w.pre > v.pre`` (``<`` for preceding-sibling)."""
        q = self.compile_expr(core.input, env, loop)
        na, nb = str(self._fresh()), str(self._fresh())
        context = Project(
            Join(self.doc, q, Comparison("=", col("pre"), col("item"))),
            [
                ("iter", "iter"),
                (f"pre{na}", "pre"),
                (f"size{na}", "size"),
                (f"level{na}", "level"),
            ],
        )
        parent = Join(self.doc, context, axis_predicate("parent", na, False))
        parent_ctx = Project(
            parent,
            [
                ("iter", "iter"),
                (f"pre{nb}", "pre"),
                (f"size{nb}", "size"),
                (f"level{nb}", "level"),
                (f"pre{na}", f"pre{na}"),
            ],
        )
        tested = self._tested_doc(core.kind_test, core.name_test)
        kind_pinned = _kind_pinned(core.axis, core.kind_test)
        direction = ">" if core.axis == "following-sibling" else "<"
        pred = And(
            [
                axis_predicate("child", nb, kind_pinned),
                Comparison(direction, col("pre"), col(f"pre{na}")),
            ]
        )
        joined = Join(tested, parent_ctx, pred)
        stepped = Project(joined, [("iter", "iter"), ("item", "pre")])
        return RowRank(stepped, "pos", ("item",))

    def _tested_doc(self, kind_test: str | None, name_test: str | None) -> Operator:
        """σ_{kindt(n) ∧ namet(n)}(doc) — or the bare doc leaf for node()."""
        pred = node_test_predicate(kind_test, name_test)
        if pred is None:
            return self.doc
        return Select(self.doc, pred)

    def _rule_if(self, core: CoreIf, env: Env, loop: Operator) -> Operator:
        """If: restrict the loop to iterations where the condition's
        effective boolean value is true; compile the then-branch there."""
        q_if = self.compile_expr(core.cond, env, loop)
        loop_if = Distinct(Project(q_if, [("iter1", "iter")]))
        new_env: Env = {
            name: self._iter_pos_item(
                Join(loop_if, plan, Comparison("=", col("iter1"), col("iter")))
            )
            for name, plan in env.items()
        }
        new_loop = Project(loop_if, [("iter", "iter1")])
        return self.compile_expr(core.then, new_env, new_loop)

    def _rule_valcomp(self, core: CoreValComp, env: Env, loop: Operator) -> Operator:
        """ValComp: existential comparison of a node sequence against a
        literal.  Numeric literals use the typed ``data`` column, string
        literals the untyped ``value`` column."""
        q = self.compile_expr(core.expr, env, loop)
        fetched = Join(self.doc, q, Comparison("=", col("pre"), col("item")))
        if isinstance(core.value, (int, float)):
            pred: Expr = Comparison(core.op, col("data"), lit(float(core.value)))
        else:
            pred = Comparison(core.op, col("value"), lit(core.value))
        true_iters = Distinct(Project.keep(Select(fetched, pred), ("iter",)))
        return Attach(Attach(true_iters, "pos", 1), "item", 1)

    def _rule_comp(self, core: CoreComp, env: Env, loop: Operator) -> Operator:
        """Comp: existential general comparison between two sequences,
        on the untyped string values."""
        q1 = self.compile_expr(core.left, env, loop)
        q2 = self.compile_expr(core.right, env, loop)
        n = self._fresh()
        left = Join(self.doc, q1, Comparison("=", col("pre"), col("item")))
        right = Project(
            Join(self.doc, q2, Comparison("=", col("pre"), col("item"))),
            [(f"iter{n}", "iter"), (f"value{n}", "value")],
        )
        both = Join(left, right, Comparison("=", col("iter"), col(f"iter{n}")))
        matched = Select(both, Comparison(core.op, col("value"), col(f"value{n}")))
        true_iters = Distinct(Project.keep(matched, ("iter",)))
        return Attach(Attach(true_iters, "pos", 1), "item", 1)

    def _rule_for(self, core: CoreFor, env: Env, loop: Operator) -> Operator:
        """For: the centerpiece — map each binding of ``$x`` to a fresh
        inner iteration, compile the body there, and rank the results
        back into the outer iterations' sequence order."""
        q_in = self.compile_expr(core.sequence, env, loop)
        n = self._fresh()
        inner, outer, sort, pos1 = (
            f"inner{n}",
            f"outer{n}",
            f"sort{n}",
            f"pos{n}",
        )
        q_x = RowId(q_in, inner)
        map_plan = Project(q_x, [(outer, "iter"), (inner, inner), (sort, "pos")])

        new_env: Env = {
            name: self._iter_pos_item(
                Project(
                    Join(map_plan, plan, Comparison("=", col(outer), col("iter"))),
                    [("iter", inner), ("pos", "pos"), ("item", "item")],
                )
            )
            for name, plan in env.items()
        }
        new_env[core.var] = Attach(
            Project(q_x, [("iter", inner), ("item", "item")]), "pos", 1
        )
        new_loop = Project(map_plan, [("iter", inner)])

        q = self.compile_expr(core.ret, new_env, new_loop)
        joined = Join(q, map_plan, Comparison("=", col("iter"), col(inner)))
        ranked = RowRank(joined, pos1, (sort, "pos"))
        return Project(ranked, [("iter", outer), ("pos", pos1), ("item", "item")])

    def _rule_let(self, core: CoreLet, env: Env, loop: Operator) -> Operator:
        q_bind = self.compile_expr(core.value, env, loop)
        new_env = dict(env)
        new_env[core.var] = q_bind
        return self.compile_expr(core.ret, new_env, loop)

    def _rule_var(self, core: CoreVar, env: Env) -> Operator:
        try:
            return env[core.name]
        except KeyError:
            raise CompileError(f"unbound variable ${core.name}") from None


def _kind_pinned(axis: str, kind_test: str | None) -> bool:
    """True when the node test already fixes the node kind in a way
    consistent with the axis' ATTR in/exclusion."""
    if kind_test in (None, "node"):
        return False
    return (axis == "attribute") == (kind_test == "attribute")


def compile_core(core: CoreExpr, store: DocumentStore) -> Serialize:
    """Compile a normalized Core expression against a document store."""
    return LoopLiftingCompiler(store).compile(core)
