"""Loop-lifting XQuery compiler (paper Section 2.3, Fig. 13).

Compiles XQuery Core into DAG-shaped plans of the table algebra: every
subexpression is represented by a table with schema ``iter|pos|item``,
one row per item produced per iteration of the innermost enclosing
``for`` loop.
"""

from repro.compiler.axes import axis_predicate, node_test_predicate
from repro.compiler.looplift import LoopLiftingCompiler, compile_core

__all__ = [
    "LoopLiftingCompiler",
    "axis_predicate",
    "compile_core",
    "node_test_predicate",
]
